package gen

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/collector"
	"bgpworms/internal/ixp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/semantics"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// BaseTime is the nominal observation month (the paper uses April 2018).
var BaseTime = time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)

// Internet is a fully built synthetic Internet with measurement
// infrastructure attached.
type Internet struct {
	Params       Params
	Graph        *topo.Graph
	Net          *simnet.Network
	Collectors   []*collector.Collector
	RouteServers []*ixp.RouteServer

	// Origins maps each originating AS to its allocated prefixes.
	Origins map[topo.ASN][]netip.Prefix
	// OriginTags records the communities each origin attaches per prefix
	// (ground truth for validating the pipeline).
	OriginTags map[netip.Prefix]bgp.CommunitySet

	// Registry is the ground-truth blackhole community list (§7.6).
	Registry *Registry

	// Catalogs keeps each AS's service catalog for ground-truth checks.
	Catalogs map[topo.ASN]*policy.Catalog

	// tagTruth records every informational community the network layer
	// attaches (ingress tags, location tags, bundles) — the part of the
	// dictionary ground truth not recoverable from Catalogs/OriginTags.
	tagTruth semantics.Truth

	rng *rand.Rand
	// rngSrc is the counted source behind rng: it tracks how many raw
	// draws construction consumed so a warm fork can replay the stream
	// to the identical position (see Snapshot.Fork).
	rngSrc *countingSource
}

// communityValuePool mirrors the paper's observation (Fig. 5c) that
// popular community values are "convenient" numbers: local-pref-like
// values, round numbers, and 666. Draws are geometric over this pool so a
// few values dominate with a long tail.
// (666 is deliberately absent: informational reuse of the blackhole value
// is rare in practice, and including it would pollute the Fig. 5a
// blackholing ECDF with ordinary long-traveling tags.)
var communityValuePool = []uint16{
	100, 1000, 200, 1, 2, 10, 0, 3000, 2000, 500,
	20, 300, 65000, 9498, 12, 5, 50, 150, 250,
	400, 30, 110, 120, 80, 70, 900, 210, 333, 42,
}

func (w *Internet) drawValue(rng *rand.Rand) uint16 {
	idx := int(rng.ExpFloat64() * 3.5)
	if idx >= len(communityValuePool) {
		idx = rng.Intn(len(communityValuePool))
	}
	return communityValuePool[idx]
}

// Build constructs the topology, assigns policies, attaches IXPs and
// collectors, and announces every origin prefix to convergence.
func Build(p Params) (*Internet, error) {
	defer buildSecs.ObserveSince(time.Now())
	engine, err := simnet.ParseEngine(p.Engine)
	if err != nil {
		return nil, err
	}
	if ASNStubBase+topo.ASN(p.Stubs) > ASNIXPBase {
		// Dynamic layout: route servers move to the 16-bit window, which
		// must fit between the mid tier and the stub base.
		if ASNMidBase+topo.ASN(p.Mid) > ASNIXPBase16 {
			return nil, fmt.Errorf("gen: %d mid ASes collide with the 16-bit route-server window at %d", p.Mid, ASNIXPBase16)
		}
		if ASNIXPBase16+topo.ASN(p.IXPs) > ASNStubBase {
			return nil, fmt.Errorf("gen: %d route servers overrun the 16-bit window into the stub range at %d", p.IXPs, ASNStubBase)
		}
	}
	src := newCountingSource(p.Seed)
	w := &Internet{
		Params:     p,
		Origins:    make(map[topo.ASN][]netip.Prefix),
		OriginTags: make(map[netip.Prefix]bgp.CommunitySet),
		Catalogs:   make(map[topo.ASN]*policy.Catalog),
		tagTruth:   make(semantics.Truth),
		rng:        rand.New(src),
		rngSrc:     src,
	}
	w.buildGraph()
	w.buildNetwork(engine)
	if p.Tap != nil {
		w.Net.Tap(p.Tap)
	}
	if err := w.attachIXPs(); err != nil {
		return nil, err
	}
	if err := w.attachCollectors(); err != nil {
		return nil, err
	}
	w.buildRegistry()
	if err := w.announceOrigins(); err != nil {
		return nil, err
	}
	// Origin tags are drawn during announceOrigins, so the exported
	// ground-truth dictionary is sealed last.
	w.Registry.Dict = w.TruthDict()
	return w, nil
}

// tier1ASNs / midASNs / stubASNs enumerate generated ranges.
func (w *Internet) tier1ASNs() []topo.ASN {
	out := make([]topo.ASN, w.Params.Tier1)
	for i := range out {
		out[i] = ASNTier1Base + topo.ASN(i)
	}
	return out
}

func (w *Internet) midASNs() []topo.ASN {
	out := make([]topo.ASN, w.Params.Mid)
	for i := range out {
		out[i] = ASNMidBase + topo.ASN(i)
	}
	return out
}

func (w *Internet) stubASNs() []topo.ASN {
	out := make([]topo.ASN, w.Params.Stubs)
	for i := range out {
		out[i] = ASNStubBase + topo.ASN(i)
	}
	return out
}

func (w *Internet) buildGraph() {
	g := topo.NewGraph()
	t1 := w.tier1ASNs()
	for i, a := range t1 {
		for _, b := range t1[i+1:] {
			g.AddPeering(a, b)
		}
	}
	// Mid-tier: preferential attachment to tier-1 and earlier mids.
	mids := w.midASNs()
	for i, m := range mids {
		nProv := 1 + w.rng.Intn(2)
		cands := append(append([]topo.ASN(nil), t1...), mids[:i]...)
		for k := 0; k < nProv && len(cands) > 0; k++ {
			// Bias toward the front (bigger networks).
			idx := int(float64(len(cands)) * w.rng.Float64() * w.rng.Float64())
			g.AddCustomerProvider(m, cands[idx])
			cands = append(cands[:idx], cands[idx+1:]...)
		}
		// Occasional lateral peering.
		if i > 0 && w.rng.Float64() < 0.25 {
			peer := mids[w.rng.Intn(i)]
			if !g.HasLink(m, peer) {
				g.AddPeering(m, peer)
			}
		}
	}
	// Stubs: multi-home into the mid tier.
	for _, s := range w.stubASNs() {
		nProv := 1 + w.rng.Intn(2)
		seen := map[topo.ASN]bool{}
		for k := 0; k < nProv; k++ {
			idx := int(float64(len(mids)) * w.rng.Float64() * w.rng.Float64())
			prov := mids[idx]
			if seen[prov] {
				continue
			}
			seen[prov] = true
			g.AddCustomerProvider(s, prov)
		}
	}
	w.Graph = g
}

// asRNG derives a per-AS deterministic RNG so policy assignment does not
// depend on iteration order.
func (w *Internet) asRNG(asn topo.ASN) *rand.Rand {
	return rand.New(rand.NewSource(w.Params.Seed*1e9 + int64(asn)))
}

func (w *Internet) buildNetwork(engine simnet.Engine) {
	p := w.Params
	w.Net = simnet.New(w.Graph, func(asn topo.ASN) router.Config {
		rng := w.asRNG(asn)
		cfg := router.Config{ASN: asn}

		// Vendor and send-community (§6.1): IOS must opt in, and usually
		// does because communities implement basic services.
		if rng.Float64() < 0.55 {
			cfg.Vendor = router.VendorCisco
			cfg.SendCommunity = make(map[topo.ASN]bool)
			for _, nb := range w.Graph.Neighbors(asn) {
				if rng.Float64() < 0.92 {
					cfg.SendCommunity[nb] = true
				}
			}
		} else {
			cfg.Vendor = router.VendorJuniper
		}

		// Propagation mode mix (§4.4's "nearly everyone has a different
		// view").
		total := p.PropForwardAll + p.PropStripAll + p.PropActStripOwn + p.PropStripForeign
		x := rng.Float64() * total
		switch {
		case x < p.PropForwardAll:
			cfg.Propagation = policy.PropForwardAll
		case x < p.PropForwardAll+p.PropStripAll:
			cfg.Propagation = policy.PropStripAll
		case x < p.PropForwardAll+p.PropStripAll+p.PropActStripOwn:
			cfg.Propagation = policy.PropActStripOwn
		default:
			cfg.Propagation = policy.PropStripForeign
		}

		isTransit := w.Graph.IsTransit(asn)
		cat := policy.NewCatalog(asn)
		if isTransit {
			if rng.Float64() < p.PBlackholeService {
				val := uint16(666)
				if rng.Float64() < 0.2 {
					val = 999 // some providers use non-standard labels
				}
				cat.Add(policy.Service{Community: bgp.C(uint16(asn), val), Kind: policy.SvcBlackhole})
				cfg.BlackholeMinLen = 24
				// RFC 7999 recommends NO_EXPORT on blackhole routes; many
				// deployments follow it, which is why blackholing
				// communities travel shorter distances (Fig. 5a).
				cfg.BlackholeAddNoExport = rng.Float64() < 0.55
			}
			if rng.Float64() < p.PPrependService {
				for n := 1; n <= 3; n++ {
					cat.Add(policy.Service{
						Community: bgp.C(uint16(asn), uint16(100+n)), Kind: policy.SvcPrepend,
						Param: uint32(n), CustomerOnly: true,
					})
				}
			}
			if rng.Float64() < p.PLocalPrefService {
				cat.Add(policy.Service{Community: bgp.C(uint16(asn), 70), Kind: policy.SvcLocalPref, Param: 70, CustomerOnly: true})
				cat.Add(policy.Service{Community: bgp.C(uint16(asn), 130), Kind: policy.SvcLocalPref, Param: 130, CustomerOnly: true})
			}
			if rng.Float64() < p.PLocationTagging {
				cfg.LocationTags = make(map[topo.ASN]bgp.Community)
				for _, nb := range w.Graph.Neighbors(asn) {
					cfg.LocationTags[nb] = bgp.C(uint16(asn), uint16(200+int(nb)%20))
					w.tagTruth.Add(cfg.LocationTags[nb], semantics.ClassInformational)
				}
			}
			// Prefix-length hygiene: many transits enforce /24 max —
			// which is what keeps /32 blackhole trails short (§7.3:
			// "many providers enforce a limit on the maximum prefix mask
			// length of announcements they will accept").
			if rng.Float64() < 0.6 {
				cfg.MaxPrefixLen = 24
			}
			// Ingress policy communities, assembled as per-neighbor
			// import-map terms.
			importTerms := map[topo.ASN][]policy.Term{}
			// Most sizable transits tag ingress routes with their own
			// informational communities (origin/type tagging, the dominant
			// reason >75% of updates carry communities in §4.2).
			if rng.Float64() < p.PIngressTags {
				tag := bgp.C(uint16(asn), w.drawValue(rng))
				extra := bgp.C(uint16(asn), w.drawValue(rng))
				w.tagTruth.Add(tag, semantics.ClassInformational)
				w.tagTruth.Add(extra, semantics.ClassInformational)
				for _, nb := range w.Graph.Neighbors(asn) {
					adds := []bgp.Community{tag}
					if rng.Float64() < 0.4 {
						adds = append(adds, extra)
					}
					importTerms[nb] = append(importTerms[nb], policy.Term{
						AddCommunities: adds, Continue: true,
					})
				}
			}
			// Community bundling: tag customer ingress with a community
			// referencing a neighbor (off-path source, §4.3).
			if rng.Float64() < p.PBundling {
				nbs := w.Graph.Neighbors(asn)
				if len(nbs) > 0 {
					ref := nbs[rng.Intn(len(nbs))]
					if ref <= 0xFFFF {
						bundle := bgp.C(uint16(ref), w.drawValue(rng))
						// Bundles name a neighbor AS the bundler, not the
						// named AS, attaches — still legitimate recurring
						// usage under that ASN, so truth keeps them.
						w.tagTruth.Add(bundle, semantics.ClassInformational)
						for _, c := range w.Graph.Customers(asn) {
							importTerms[c] = append(importTerms[c], policy.Term{
								AddCommunities: []bgp.Community{bundle}, Continue: true,
							})
						}
					}
				}
			}
			if len(importTerms) > 0 {
				cfg.ImportMaps = map[topo.ASN]*policy.RouteMap{}
				for nb, terms := range importTerms {
					cfg.ImportMaps[nb] = &policy.RouteMap{Terms: terms}
				}
			}
		}
		cfg.Catalog = cat
		w.Catalogs[asn] = cat
		return cfg
	})
	if p.Workers != 0 {
		w.Net.SetWorkers(p.Workers)
	}
	w.Net.SetEngine(engine)
}

func (w *Internet) attachIXPs() error {
	members := append(w.midASNs(), w.stubASNs()...)
	for i := 0; i < w.Params.IXPs; i++ {
		rs := ixp.NewRouteServer(w.Params.IXPBase()+topo.ASN(i), ixp.SuppressFirst)
		span := w.Params.IXPMemberSpan
		start := (i * span * 2) % max(1, len(members)-span)
		for k := 0; k < span && start+k < len(members); k++ {
			if err := rs.AddMember(members[start+k]); err != nil {
				return err
			}
		}
		if err := rs.Attach(w.Net); err != nil {
			return err
		}
		w.RouteServers = append(w.RouteServers, rs)
	}
	return nil
}

func (w *Internet) attachCollectors() error {
	p := w.Params
	asn := p.CollectorBase()
	// Peer pool: transit ASes carry the interesting views.
	pool := append(w.tier1ASNs(), w.midASNs()...)
	for _, platform := range collector.Platforms {
		count := p.CollectorsPerPlatform[string(platform)]
		for i := 0; i < count; i++ {
			name := fmt.Sprintf("%s-%02d", platform, i)
			c := collector.New(platform, name, asn, BaseTime)
			asn++
			if platform == collector.PlatformPCH {
				// PCH peers with IXP route servers (§4.1) plus a few mids.
				for _, rs := range w.RouteServers {
					c.AddPeer(collector.Peer{AS: rs.ASN(), Feed: collector.CustomerFeed})
				}
				for k := 0; k < p.PeersPerCollector/2; k++ {
					c.AddPeer(collector.Peer{AS: pool[w.rng.Intn(len(pool))], Feed: collector.CustomerFeed})
				}
			} else {
				for k := 0; k < p.PeersPerCollector; k++ {
					peer := pool[w.rng.Intn(len(pool))]
					feed := collector.FullFeed
					switch r := w.rng.Float64(); {
					case r < 0.20:
						feed = collector.PartialFeed
					case r < 0.30:
						feed = collector.CustomerFeed
					}
					c.AddPeer(collector.Peer{AS: peer, Feed: feed})
				}
			}
			if err := c.Attach(w.Net); err != nil {
				return err
			}
			w.Collectors = append(w.Collectors, c)
		}
	}
	return nil
}

// prefixFor allocates the k-th /24 for an origin index, carving
// disjoint space per origin.
func prefixFor(originIdx, k int) netip.Prefix {
	n := originIdx*4 + k // up to 4 prefixes per origin
	return netx.PrefixV4(byte(20+n/65536), byte((n/256)%256), byte(n%256), 0, 24)
}

// v6PrefixFor allocates a /48 under 2001:db8::/32.
func v6PrefixFor(originIdx int) netip.Prefix {
	return netx.MustPrefix(fmt.Sprintf("2001:db8:%x::/48", originIdx+1))
}

func (w *Internet) announceOrigins() error {
	stubs := w.stubASNs()
	step := w.Params.OriginSampleEvery
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(stubs); i += step {
		s := stubs[i]
		rng := w.asRNG(s)
		nPfx := 1 + rng.Intn(w.Params.MaxPrefixesPerOrigin)
		for k := 0; k < nPfx; k++ {
			pfx := prefixFor(i, k)
			tags := w.originTagSet(s, rng)
			w.Origins[s] = append(w.Origins[s], pfx)
			w.OriginTags[pfx] = tags
			if _, err := w.Net.Announce(s, pfx, tags...); err != nil {
				return err
			}
		}
		if rng.Float64() < w.Params.V6Share {
			pfx := v6PrefixFor(i)
			w.Origins[s] = append(w.Origins[s], pfx)
			if _, err := w.Net.Announce(s, pfx); err != nil {
				return err
			}
		}
	}
	return nil
}

// originTagSet draws the communities an origin attaches at announcement
// and folds them into the ground-truth dictionary (churn retagging
// replaces OriginTags entries, but a value once legitimately announced
// stays truth).
func (w *Internet) originTagSet(s topo.ASN, rng *rand.Rand) bgp.CommunitySet {
	tags := w.drawOriginTagSet(s, rng)
	for _, c := range tags {
		w.tagTruth.Add(c, semantics.ClassInformational)
	}
	return tags
}

func (w *Internet) drawOriginTagSet(s topo.ASN, rng *rand.Rand) bgp.CommunitySet {
	var tags bgp.CommunitySet
	// Classic communities only address 16-bit ASNs; origins in the
	// 4-byte-style tail of the internet preset cannot name themselves
	// (Table 2's unaddressable-AS discussion) and announce untagged or
	// with private/provider tags only.
	if s <= 0xFFFF && rng.Float64() < w.Params.POriginTags {
		n := 1 + rng.Intn(3)
		for t := 0; t < n; t++ {
			tags = tags.Add(bgp.C(uint16(s), w.drawValue(rng)))
		}
	}
	if rng.Float64() < w.Params.PPrivateTag {
		tags = tags.Add(bgp.C(uint16(64512+rng.Intn(1023)), w.drawValue(rng)))
	}
	// Legitimate remote-service use: sometimes request prepending or a
	// lower pref from a (transitive) provider.
	if rng.Float64() < 0.15 {
		provs := w.Graph.Providers(s)
		if len(provs) > 0 {
			prov := provs[rng.Intn(len(provs))]
			if svc, ok := w.Catalogs[prov].Lookup(bgp.C(uint16(prov), 101)); ok {
				tags = tags.Add(svc.Community)
			} else if svc, ok := w.Catalogs[prov].Lookup(bgp.C(uint16(prov), 70)); ok {
				tags = tags.Add(svc.Community)
			}
		}
	}
	return tags
}

// AllPrefixes lists every originated prefix in canonical order.
func (w *Internet) AllPrefixes() []netip.Prefix {
	var out []netip.Prefix
	for _, ps := range w.Origins {
		out = append(out, ps...)
	}
	sort.Slice(out, func(i, j int) bool { return netx.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// OriginOf returns the origin AS for a generated prefix.
func (w *Internet) OriginOf(p netip.Prefix) (topo.ASN, bool) {
	for asn, ps := range w.Origins {
		for _, q := range ps {
			if q == p {
				return asn, true
			}
		}
	}
	return 0, false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
