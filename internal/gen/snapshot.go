package gen

import (
	"fmt"
	"maps"
	"math/rand"
	"net/netip"
	"reflect"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/collector"
	"bgpworms/internal/ixp"
	"bgpworms/internal/policy"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// Warm worlds: BuildSnapshot freezes a converged Internet right after
// Build, before any scenario perturbs it, and Fork hands out mutable
// worlds that share the frozen routing state copy-on-write. Everything a
// fork could diverge on is made fork-private here — maps are cloned,
// slices capacity-clamped so appends reallocate, and the construction
// RNG is replayed to the exact draw position Build stopped at — so a
// fork-then-perturb run is bit-identical to building the same perturbed
// world from scratch. The differential suite (internal/attack warm
// tests) holds every registered scenario to that equivalence.

// countingSource wraps a math/rand source and counts raw draws. Both
// Int63 and Uint64 advance the underlying generator by exactly one step,
// so the count alone pins the stream position: a replayed source that
// burns the same number of draws is in the identical state.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.n = 0
	s.src.Seed(seed)
}

// replaySource returns a source seeded like the original and advanced
// past the same number of draws.
func replaySource(seed int64, draws uint64) *countingSource {
	s := newCountingSource(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.n = draws
	return s
}

// TapEvent is one recorded update delivery from world construction. The
// route pointer is the shared (sealed, immutable) slab object the live
// tap saw; consumers that retain routes clone them, exactly as they do
// on the live stream.
type TapEvent struct {
	From, To topo.ASN
	Prefix   netip.Prefix
	Route    *policy.Route
}

// Snapshot is a frozen, converged Internet plus everything needed to
// hand out equivalent warm forks: the sealed network, the construction
// tap stream (replayed into each fork's tap so stream consumers see the
// full history a scratch build would have shown them), and the RNG draw
// count at freeze time.
type Snapshot struct {
	params Params // Tap preserved from build time, excluded from Compatible
	world  *Internet
	net    *simnet.Snapshot
	stream []TapEvent
	draws  uint64
}

// BuildSnapshot builds a world exactly as Build does and freezes it.
// p.Tap, if set, observes the construction stream live, exactly as under
// Build; the stream is additionally recorded for replay into forks.
func BuildSnapshot(p Params) (*Snapshot, error) {
	userTap := p.Tap
	var stream []TapEvent
	p.Tap = func(from, to topo.ASN, prefix netip.Prefix, rt *policy.Route) {
		stream = append(stream, TapEvent{From: from, To: to, Prefix: prefix, Route: rt})
		if userTap != nil {
			userTap(from, to, prefix, rt)
		}
	}
	w, err := Build(p)
	if err != nil {
		return nil, err
	}
	net, err := w.Net.Freeze()
	if err != nil {
		return nil, err
	}
	params := p
	params.Tap = userTap
	return &Snapshot{params: params, world: w, net: net, stream: stream, draws: w.rngSrc.n}, nil
}

// Params returns the parameters the snapshot was built with (with the
// build-time tap, which forks do not inherit).
func (s *Snapshot) Params() Params { return s.params }

// Forks reports how many forks the snapshot has handed out.
func (s *Snapshot) Forks() int { return s.net.Forks() }

// Discard retires the snapshot; further Fork calls fail loudly.
func (s *Snapshot) Discard() error { return s.net.Discard() }

// Compatible reports whether a world built from p would be the world
// this snapshot froze — every parameter except the tap must match. Warm
// harnesses call it before forking so a snapshot can never silently
// stand in for a differently parameterized world.
func (s *Snapshot) Compatible(p Params) error {
	a, b := s.params, p
	a.Tap, b.Tap = nil, nil
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("gen: warm snapshot built for %+v cannot serve params %+v", a, b)
	}
	return nil
}

// Fork returns a mutable Internet backed by the snapshot. tap, if
// non-nil, first replays the recorded construction stream (so streaming
// consumers see what a live tap on a scratch build would have seen) and
// is then registered on the fork in the same position Build registers
// Params.Tap — before the collectors' taps. All ground-truth maps and
// registries are fork-private; routers copy-on-write as the fork's runs
// touch them.
func (s *Snapshot) Fork(tap simnet.UpdateTap) (*Internet, error) {
	defer forkSecs.ObserveSince(time.Now())
	n, err := s.net.Fork()
	if err != nil {
		return nil, err
	}
	if tap != nil {
		for _, ev := range s.stream {
			tap(ev.From, ev.To, ev.Prefix, ev.Route)
		}
		n.Tap(tap)
	}
	w := s.world
	f := &Internet{
		Params:     s.params,
		Graph:      w.Graph,
		Net:        n,
		Origins:    clampSliceMap(w.Origins),
		OriginTags: clampTagMap(w.OriginTags),
		Registry:   w.Registry.forkClone(),
		Catalogs:   maps.Clone(w.Catalogs),
		tagTruth:   maps.Clone(w.tagTruth),
	}
	f.Params.Tap = tap
	f.rngSrc = replaySource(s.params.Seed, s.draws)
	f.rng = rand.New(f.rngSrc)
	f.Collectors = make([]*collector.Collector, 0, len(w.Collectors))
	for _, c := range w.Collectors {
		f.Collectors = append(f.Collectors, c.ForkInto(n))
	}
	f.RouteServers = make([]*ixp.RouteServer, 0, len(w.RouteServers))
	for _, rs := range w.RouteServers {
		f.RouteServers = append(f.RouteServers, rs.ForkInto(n))
	}
	return f, nil
}

// clampSliceMap clones a map of slices with each value capacity-clamped,
// so a fork appending to an entry reallocates instead of writing into
// the snapshot's backing array.
func clampSliceMap(m map[topo.ASN][]netip.Prefix) map[topo.ASN][]netip.Prefix {
	out := make(map[topo.ASN][]netip.Prefix, len(m))
	for k, v := range m {
		out[k] = v[:len(v):len(v)]
	}
	return out
}

func clampTagMap(m map[netip.Prefix]bgp.CommunitySet) map[netip.Prefix]bgp.CommunitySet {
	out := make(map[netip.Prefix]bgp.CommunitySet, len(m))
	for k, v := range m {
		out[k] = v[:len(v):len(v)]
	}
	return out
}

// forkClone returns a fork-private registry: the community lists are
// capacity-clamped (labs append and sort them in place) and the sealed
// dictionary map is cloned.
func (r *Registry) forkClone() *Registry {
	return &Registry{
		Verified: r.Verified[:len(r.Verified):len(r.Verified)],
		Likely:   r.Likely[:len(r.Likely):len(r.Likely)],
		Dict:     maps.Clone(r.Dict),
	}
}
