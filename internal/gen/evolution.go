package gen

import (
	"math"

	"bgpworms/internal/topo"
)

// EvolutionPoint is one year's community-usage metrics — a row of the
// Figure 3 time series.
type EvolutionPoint struct {
	Year int
	// UniqueASes is the number of distinct ASes referenced in observed
	// communities (under the AS:value convention).
	UniqueASes int
	// UniqueCommunities is the number of distinct community values seen.
	UniqueCommunities int
	// AbsoluteCommunities is the total community count across updates.
	AbsoluteCommunities int
	// TableEntries is the summed collector RIB size.
	TableEntries int
}

// ScaleForYear shrinks base parameters to an earlier year. Community use
// grows superlinearly (the paper reports +18% uniques in the single year
// to April 2018 and a ~10x rise since 2010), so both the network size and
// the tagging propensity scale.
func ScaleForYear(base Params, year int) Params {
	f := math.Pow(float64(year-2009)/9.0, 1.3)
	if f < 0.12 {
		f = 0.12
	}
	p := base
	// Keep the seed constant: successive years then share generator
	// draws, so growth dominates sampling noise in the Figure 3 series.
	p.Seed = base.Seed
	p.Tier1 = maxInt(3, int(float64(base.Tier1)*f))
	p.Mid = maxInt(4, int(float64(base.Mid)*f))
	p.Stubs = maxInt(10, int(float64(base.Stubs)*f))
	p.IXPs = maxInt(1, int(float64(base.IXPs)*f))
	p.ChurnEvents = maxInt(5, int(float64(base.ChurnEvents)*f))
	p.RTBHEvents = maxInt(1, int(float64(base.RTBHEvents)*f))
	p.POriginTags = base.POriginTags * (0.45 + 0.55*f)
	p.PLocationTagging = base.PLocationTagging * (0.4 + 0.6*f)
	p.PBlackholeService = base.PBlackholeService * (0.35 + 0.65*f)
	return p
}

// MetricsFn extracts the Figure 3 metrics from a built Internet after its
// churn ran. It is supplied by the analysis layer to avoid a dependency
// cycle (gen builds worlds, core measures them).
type MetricsFn func(w *Internet) (uniqueASes, uniqueComms, absolute, tableEntries int)

// Evolution builds one Internet per year and measures it, producing the
// Figure 3 series.
func Evolution(base Params, years []int, measure MetricsFn) ([]EvolutionPoint, error) {
	var out []EvolutionPoint
	for _, y := range years {
		w, err := Build(ScaleForYear(base, y))
		if err != nil {
			return nil, err
		}
		if _, err := w.RunChurn(); err != nil {
			return nil, err
		}
		ua, uc, abs, te := measure(w)
		out = append(out, EvolutionPoint{
			Year: y, UniqueASes: ua, UniqueCommunities: uc,
			AbsoluteCommunities: abs, TableEntries: te,
		})
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TransitASes returns the generated transit ASes (tier-1 + mid).
func (w *Internet) TransitASes() []topo.ASN {
	return append(w.tier1ASNs(), w.midASNs()...)
}

// StubASes returns the generated stub ASes.
func (w *Internet) StubASes() []topo.ASN { return w.stubASNs() }
