package gen

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/semantics"
	"bgpworms/internal/topo"
)

// RTBHEpisode records one blackhole event generated during churn, the
// ground truth for Figure 5a's blackholing ECDF and the §7.6 sweep.
type RTBHEpisode struct {
	Victim    topo.ASN
	Provider  topo.ASN
	Community bgp.Community
	HostRoute netip.Prefix
}

// ChurnReport summarizes a month of routing dynamics.
type ChurnReport struct {
	Reannouncements int
	Retagged        int
	RTBH            []RTBHEpisode
	IXPTagged       int
}

// RunChurn simulates the observation month: re-announcement trains,
// community retagging, blackhole episodes, and IXP-community tagging. All
// of it lands in the collectors' update archives.
func (w *Internet) RunChurn() (*ChurnReport, error) {
	defer churnSecs.ObserveSince(time.Now())
	rep := &ChurnReport{}
	prefixes := w.AllPrefixes()
	if len(prefixes) == 0 {
		return rep, nil
	}

	// Flap/retag events.
	for e := 0; e < w.Params.ChurnEvents; e++ {
		pfx := prefixes[w.rng.Intn(len(prefixes))]
		origin, ok := w.OriginOf(pfx)
		if !ok {
			continue
		}
		if _, err := w.Net.Withdraw(origin, pfx); err != nil {
			return rep, fmt.Errorf("gen: churn withdraw: %w", err)
		}
		tags := w.OriginTags[pfx]
		if w.rng.Float64() < 0.2 {
			tags = w.originTagSet(origin, w.asRNG(origin+topo.ASN(e)))
			w.OriginTags[pfx] = tags
			rep.Retagged++
		}
		if _, err := w.Net.Announce(origin, pfx, tags...); err != nil {
			return rep, fmt.Errorf("gen: churn announce: %w", err)
		}
		rep.Reannouncements++
	}

	// RTBH episodes: a victim stub blackholes an attacked host at one of
	// its providers (legitimate DDoS mitigation — the baseline behaviour
	// whose community trails §4.3 measures). Two thirds target a /32 host
	// route (kept short by prefix-length hygiene); one third blackholes
	// the whole /24, whose community trails propagate like any route —
	// the long tail of Fig. 5a (the paper sees blackhole communities up
	// to 11 hops out).
	victims := w.rtbhCapableStubs()
	for e := 0; e < w.Params.RTBHEvents && len(victims) > 0; e++ {
		v := victims[w.rng.Intn(len(victims))]
		pfxs := w.Origins[v.victim]
		if len(pfxs) == 0 {
			continue
		}
		base := pfxs[0]
		if !base.Addr().Is4() {
			continue
		}
		if e%3 == 2 {
			// Whole-prefix blackhole: re-announce the /24 tagged.
			if _, err := w.Net.Withdraw(v.victim, base); err != nil {
				return rep, err
			}
			tags := w.OriginTags[base].Clone().Add(v.community)
			if _, err := w.Net.Announce(v.victim, base, tags...); err != nil {
				return rep, fmt.Errorf("gen: rtbh /24 announce: %w", err)
			}
			rep.RTBH = append(rep.RTBH, RTBHEpisode{
				Victim: v.victim, Provider: v.provider, Community: v.community, HostRoute: base,
			})
			// Attack over: restore the plain announcement.
			if _, err := w.Net.Withdraw(v.victim, base); err != nil {
				return rep, err
			}
			if _, err := w.Net.Announce(v.victim, base, w.OriginTags[base]...); err != nil {
				return rep, err
			}
			continue
		}
		host := netip.PrefixFrom(netx.NthAddr(base, uint64(10+e)), 32).Masked()
		if _, err := w.Net.Announce(v.victim, host, v.community); err != nil {
			return rep, fmt.Errorf("gen: rtbh announce: %w", err)
		}
		rep.RTBH = append(rep.RTBH, RTBHEpisode{
			Victim: v.victim, Provider: v.provider, Community: v.community, HostRoute: host,
		})
		// Mitigation over: withdraw again (half the time, so some RTBH
		// state survives into the RIB snapshot).
		if e%2 == 0 {
			if _, err := w.Net.Withdraw(v.victim, host); err != nil {
				return rep, err
			}
		}
	}

	// IXP community usage: members selectively announce via route servers.
	for i, rs := range w.RouteServers {
		members := rs.Members()
		if len(members) < 2 {
			continue
		}
		src := members[i%len(members)]
		dst := members[(i+1)%len(members)]
		pfxs := w.Origins[src]
		if len(pfxs) == 0 {
			continue
		}
		pfx := pfxs[0]
		if _, err := w.Net.Withdraw(src, pfx); err != nil {
			return rep, err
		}
		tags := w.OriginTags[pfx].Clone().Add(rs.AnnounceToCommunity(dst))
		if _, err := w.Net.Announce(src, pfx, tags...); err != nil {
			return rep, err
		}
		rep.IXPTagged++
	}
	return rep, nil
}

type rtbhTarget struct {
	victim    topo.ASN
	provider  topo.ASN
	community bgp.Community
}

// rtbhCapableStubs finds originating stubs with at least one provider
// offering RTBH (sampled-origin presets leave most stubs prefixless —
// nothing to blackhole there).
func (w *Internet) rtbhCapableStubs() []rtbhTarget {
	var out []rtbhTarget
	for _, s := range w.stubASNs() {
		if len(w.Origins[s]) == 0 {
			continue
		}
		for _, prov := range w.Graph.Providers(s) {
			if bh, ok := w.Catalogs[prov].BlackholeCommunity(); ok {
				out = append(out, rtbhTarget{victim: s, provider: prov, community: bh})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].victim < out[j].victim })
	return out
}

// Registry is the blackhole-community ground truth plus decoys — the
// synthetic analogue of the verified/inferred lists from Giotsas et al.
// that §7.6 sweeps.
type Registry struct {
	// Verified are real RTBH triggers (provider offers the service).
	Verified []bgp.Community
	// Likely are plausible-looking decoys (value 666 on ASes without the
	// service) mirroring the 115 "likely" labels in the source dataset.
	Likely []bgp.Community
	// Dict is the world's complete community dictionary ground truth
	// (every defined or attached community with its true usage class),
	// sealed at the end of Build — the oracle semantics-inference
	// precision and recall are scored against. TruthDict recomputes it
	// live when labs add services after Build.
	Dict semantics.Truth
}

// All returns verified plus likely, verified first.
func (r *Registry) All() []bgp.Community {
	return append(append([]bgp.Community(nil), r.Verified...), r.Likely...)
}

func (w *Internet) buildRegistry() {
	reg := &Registry{}
	seen := map[bgp.Community]bool{}
	for _, asn := range append(w.tier1ASNs(), w.midASNs()...) {
		if bh, ok := w.Catalogs[asn].BlackholeCommunity(); ok {
			if !seen[bh] {
				reg.Verified = append(reg.Verified, bh)
				seen[bh] = true
			}
		} else {
			// Decoy: looks like a blackhole community, acts as nothing.
			c := bgp.C(uint16(asn), 666)
			if !seen[c] && w.asRNG(asn).Float64() < 0.3 {
				reg.Likely = append(reg.Likely, c)
				seen[c] = true
			}
		}
	}
	// The RFC 7999 well-known value is always in the verified list.
	reg.Verified = append(reg.Verified, bgp.CommunityBlackhole)
	sort.Slice(reg.Verified, func(i, j int) bool { return reg.Verified[i] < reg.Verified[j] })
	sort.Slice(reg.Likely, func(i, j int) bool { return reg.Likely[i] < reg.Likely[j] })
	w.Registry = reg
}
