package gen

import (
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/collector"
	"bgpworms/internal/policy"
	"bgpworms/internal/semantics"
	"bgpworms/internal/topo"
)

func buildTiny(t *testing.T) *Internet {
	t.Helper()
	w, err := Build(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildTopologyShape(t *testing.T) {
	w := buildTiny(t)
	p := w.Params
	if w.Graph.NumASes() != p.Tier1+p.Mid+p.Stubs {
		t.Fatalf("ASes=%d want %d", w.Graph.NumASes(), p.Tier1+p.Mid+p.Stubs)
	}
	// Tier-1s form a clique of peers with no providers.
	for _, a := range w.tier1ASNs() {
		if !w.Graph.IsTier1(a) {
			t.Fatalf("AS%d is not tier1", a)
		}
		if got := len(w.Graph.Peers(a)); got != p.Tier1-1 {
			t.Fatalf("tier1 AS%d peers=%d", a, got)
		}
	}
	// Every stub has at least one provider and no customers.
	for _, s := range w.stubASNs() {
		if len(w.Graph.Providers(s)) == 0 || !w.Graph.IsStub(s) {
			t.Fatalf("stub AS%d malformed", s)
		}
	}
	// Every mid is connected upward.
	for _, m := range w.midASNs() {
		if len(w.Graph.Providers(m)) == 0 {
			t.Fatalf("mid AS%d has no providers", m)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	w1 := buildTiny(t)
	w2 := buildTiny(t)
	if w1.Graph.NumLinks() != w2.Graph.NumLinks() {
		t.Fatal("topology not deterministic")
	}
	p1, p2 := w1.AllPrefixes(), w2.AllPrefixes()
	if len(p1) != len(p2) {
		t.Fatal("prefix allocation not deterministic")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("prefix order differs")
		}
	}
	// Same tags.
	for pfx, tags := range w1.OriginTags {
		other := w2.OriginTags[pfx]
		if tags.String() != other.String() {
			t.Fatalf("tags differ for %s: %v vs %v", pfx, tags, other)
		}
	}
}

func TestPrefixesReachTheCore(t *testing.T) {
	w := buildTiny(t)
	// Every originated v4 prefix must be visible at every tier-1.
	missing := 0
	for _, pfx := range w.AllPrefixes() {
		for _, t1 := range w.tier1ASNs() {
			if _, ok := w.Net.Router(t1).BestRoute(pfx); !ok {
				missing++
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d (prefix, tier1) pairs unreachable", missing)
	}
}

func TestOriginTagsArriveAtCollectors(t *testing.T) {
	w := buildTiny(t)
	// At least one collector observation must carry an origin-owned
	// community, proving communities transit multiple hops.
	found := false
	for _, c := range w.Collectors {
		for _, ob := range c.Observations() {
			if ob.Route == nil {
				continue
			}
			origin := ob.Route.ASPath.Origin()
			for _, comm := range ob.Route.Communities {
				if topo.ASN(comm.ASN()) == origin && origin >= ASNStubBase {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no origin community observed at any collector")
	}
}

func TestCollectorsAttached(t *testing.T) {
	w := buildTiny(t)
	if len(w.Collectors) != 4 {
		t.Fatalf("collectors=%d", len(w.Collectors))
	}
	platforms := map[collector.Platform]bool{}
	for _, c := range w.Collectors {
		platforms[c.Platform] = true
		if len(c.Observations()) == 0 {
			t.Fatalf("collector %s recorded nothing", c)
		}
	}
	if len(platforms) != 4 {
		t.Fatalf("platforms=%v", platforms)
	}
}

func TestRouteServersAttached(t *testing.T) {
	w := buildTiny(t)
	if len(w.RouteServers) != w.Params.IXPs {
		t.Fatalf("route servers=%d", len(w.RouteServers))
	}
	for _, rs := range w.RouteServers {
		if len(rs.Members()) == 0 {
			t.Fatal("route server without members")
		}
	}
}

func TestChurnProducesEvents(t *testing.T) {
	w := buildTiny(t)
	before := 0
	for _, c := range w.Collectors {
		before += len(c.Observations())
	}
	rep, err := w.RunChurn()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reannouncements == 0 {
		t.Fatal("no re-announcements")
	}
	if len(rep.RTBH) == 0 {
		t.Fatal("no RTBH episodes")
	}
	after := 0
	for _, c := range w.Collectors {
		after += len(c.Observations())
	}
	if after <= before {
		t.Fatal("churn generated no new observations")
	}
	// RTBH episodes target /32 host routes or whole /24s, always with a
	// provider's blackhole community.
	saw32 := false
	for _, ep := range rep.RTBH {
		if ep.HostRoute.Bits() != 32 && ep.HostRoute.Bits() != 24 {
			t.Fatalf("host route %s", ep.HostRoute)
		}
		if ep.HostRoute.Bits() == 32 {
			saw32 = true
		}
		if !ep.Community.IsBlackhole() && ep.Community.Value() != 999 {
			t.Fatalf("unexpected blackhole community %s", ep.Community)
		}
	}
	if !saw32 {
		t.Fatal("no host-route episodes")
	}
}

func TestPreset(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Stubs == 0 {
			t.Fatalf("preset %q has no stubs", name)
		}
	}
	if _, err := Preset("galactic"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRegistryGroundTruth(t *testing.T) {
	w := buildTiny(t)
	if len(w.Registry.Verified) == 0 {
		t.Fatal("no verified blackhole communities")
	}
	// RFC 7999 always present.
	has7999 := false
	for _, c := range w.Registry.Verified {
		if c == bgp.CommunityBlackhole {
			has7999 = true
		}
	}
	if !has7999 {
		t.Fatal("RFC 7999 missing from registry")
	}
	// Verified entries (other than 65535:666) map to ASes with the
	// service.
	for _, c := range w.Registry.Verified {
		if c == bgp.CommunityBlackhole {
			continue
		}
		cat := w.Catalogs[topo.ASN(c.ASN())]
		if bh, ok := cat.BlackholeCommunity(); !ok || bh != c {
			t.Fatalf("verified %s has no backing service", c)
		}
	}
	// Likely decoys must NOT have the service.
	for _, c := range w.Registry.Likely {
		if _, ok := w.Catalogs[topo.ASN(c.ASN())].BlackholeCommunity(); ok {
			t.Fatalf("decoy %s actually has the service", c)
		}
	}
	if got := len(w.Registry.All()); got != len(w.Registry.Verified)+len(w.Registry.Likely) {
		t.Fatalf("All()=%d", got)
	}
}

// TestTruthDictionary checks the exported dictionary ground truth: it
// covers every catalog service with the right class, every origin tag,
// and the well-known values, and labs extending catalogs after Build
// surface through TruthDict.
func TestTruthDictionary(t *testing.T) {
	w := buildTiny(t)
	dict := w.Registry.Dict
	if len(dict) == 0 {
		t.Fatal("empty ground-truth dictionary")
	}
	for asn, cat := range w.Catalogs {
		for _, svc := range cat.Services {
			want := semantics.ClassOfService(svc.Kind)
			if got, ok := dict[svc.Community]; !ok || got != want {
				t.Fatalf("AS%d service %s: dict has (%v, %v), want %s", asn, svc.Community, got, ok, want)
			}
		}
	}
	for pfx, tags := range w.OriginTags {
		for _, c := range tags {
			if _, ok := dict[c]; !ok {
				t.Fatalf("origin tag %s of %s missing from dict", c, pfx)
			}
		}
	}
	if dict[bgp.CommunityNoExport] != semantics.ClassWellKnown {
		t.Fatal("NO_EXPORT not well-known in dict")
	}
	// Decoys are exactly the non-entries: a Likely registry community
	// must not be in the ground truth (its AS offers no service).
	for _, c := range w.Registry.Likely {
		if _, ok := dict[c]; ok {
			t.Fatalf("decoy %s leaked into ground truth", c)
		}
	}
	// TruthDict is live: a service added after Build (what attack labs
	// do) appears on recomputation.
	added := bgp.C(60123, 107)
	w.Catalogs[w.TransitASes()[0]].Add(policy.Service{Community: added, Kind: policy.SvcPrepend, Param: 2})
	if got := w.TruthDict()[added]; got != semantics.ClassActionPrepend {
		t.Fatalf("live TruthDict missed added service (got %s)", got)
	}
}

func TestOriginOfAndAllPrefixes(t *testing.T) {
	w := buildTiny(t)
	all := w.AllPrefixes()
	if len(all) == 0 {
		t.Fatal("no prefixes")
	}
	asn, ok := w.OriginOf(all[0])
	if !ok || asn < ASNStubBase {
		t.Fatalf("OriginOf(%s)=%d,%v", all[0], asn, ok)
	}
	if _, ok := w.OriginOf(all[0].Masked()); !ok {
		t.Fatal("masked lookup failed")
	}
}

func TestV6PrefixesGenerated(t *testing.T) {
	p := Tiny()
	p.V6Share = 1.0 // force
	w, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	v6 := 0
	for _, pfx := range w.AllPrefixes() {
		if pfx.Addr().Is6() {
			v6++
		}
	}
	if v6 != p.Stubs {
		t.Fatalf("v6 prefixes=%d want %d", v6, p.Stubs)
	}
}

func TestScaleForYearMonotone(t *testing.T) {
	base := Small()
	last := 0
	for _, y := range []int{2010, 2012, 2014, 2016, 2018} {
		p := ScaleForYear(base, y)
		size := p.Tier1 + p.Mid + p.Stubs
		if size < last {
			t.Fatalf("scale not monotone at %d", y)
		}
		last = size
	}
	p2018 := ScaleForYear(base, 2018)
	if p2018.Stubs < base.Stubs*9/10 {
		t.Fatalf("2018 should be near base scale: %d vs %d", p2018.Stubs, base.Stubs)
	}
}

func TestEvolutionSeries(t *testing.T) {
	pts, err := Evolution(Tiny(), []int{2010, 2018}, func(w *Internet) (int, int, int, int) {
		// Trivial metric: count observations.
		n := 0
		for _, c := range w.Collectors {
			n += len(c.Observations())
		}
		return n, n, n, n
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Year != 2010 || pts[1].Year != 2018 {
		t.Fatalf("pts=%v", pts)
	}
	if pts[1].AbsoluteCommunities <= pts[0].AbsoluteCommunities {
		t.Fatalf("2018 (%d) should exceed 2010 (%d)", pts[1].AbsoluteCommunities, pts[0].AbsoluteCommunities)
	}
}

func TestTransitAndStubAccessors(t *testing.T) {
	w := buildTiny(t)
	if len(w.TransitASes()) != w.Params.Tier1+w.Params.Mid {
		t.Fatal("TransitASes wrong")
	}
	if len(w.StubASes()) != w.Params.Stubs {
		t.Fatal("StubASes wrong")
	}
}

// TestPaperScaleASNLayout pins the infrastructure ASN layout: presets
// that fit the static layout keep it (existing worlds unchanged), and
// paper-scale presets keep route servers 16-bit addressable — their
// steering communities must name a real AS — while collectors and
// injectors float above the stub range.
func TestPaperScaleASNLayout(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "large"} {
		p, _ := Preset(name)
		if p.IXPBase() != ASNIXPBase || p.CollectorBase() != ASNCollectorBase || p.InjectorBase() != ASNInjectorBase {
			t.Fatalf("%s: static layout moved: ixp=%d coll=%d inj=%d", name, p.IXPBase(), p.CollectorBase(), p.InjectorBase())
		}
	}
	p := InternetScale()
	if end := p.IXPBase() + topo.ASN(p.IXPs); end > 0xFFFF {
		t.Fatalf("internet route servers not 16-bit addressable (end %d)", end)
	}
	if p.IXPBase() < ASNMidBase+topo.ASN(p.Mid) || p.IXPBase()+topo.ASN(p.IXPs) > ASNStubBase {
		t.Fatalf("internet route-server window %d collides with mid/stub ranges", p.IXPBase())
	}
	stubEnd := ASNStubBase + topo.ASN(p.Stubs)
	if p.CollectorBase() <= stubEnd || p.InjectorBase() <= stubEnd {
		t.Fatalf("internet collector/injector bases inside the stub range: %d/%d", p.CollectorBase(), p.InjectorBase())
	}
}
