// Package gen builds synthetic Internets: a hierarchical AS topology
// (tier-1 clique, transit tiers, stubs, IXPs with route servers), per-AS
// community policies drawn from the §2 taxonomy, prefix allocations,
// route-collector deployments mirroring the four platforms of Table 1, a
// month of routing churn, and the 2010→2018 growth model behind Figure 3.
//
// This package substitutes for the paper's proprietary vantage: real MRT
// archives from RIS/RouteViews/Isolario/PCH. Everything downstream (the
// measurement pipeline in internal/core) consumes only the MRT byte
// streams and RIB views the collectors emit, never generator internals.
package gen

import (
	"fmt"

	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// Params sizes and seeds a synthetic Internet. The zero value is not
// useful; start from a preset.
type Params struct {
	Seed int64

	// Workers selects the simulation engine parallelism: 0 or 1 keeps
	// the serial FIFO engine, >1 runs the delta-driven parallel engine
	// with that many workers, and a negative value means one worker per
	// available CPU. Results are deterministic for any setting of this
	// knob given the same Seed. The parallel engines (delta, rounds)
	// share one canonical delivery order, so their recorded collector
	// streams are interchangeable; the serial engine orders deliveries
	// differently and is comparable only with itself.
	Workers int

	// Engine pins the simnet propagation engine ("serial", "rounds",
	// "delta"; "" or "auto" derives it from Workers — see
	// simnet.ParseEngine). The rounds engine is the delta engine's
	// differential oracle and is only worth pinning for that check.
	Engine string

	// Topology shape.
	Tier1 int // clique of transit-free ASes
	Mid   int // regional transit ASes
	Stubs int // edge ASes

	// MaxPrefixesPerOrigin bounds how many prefixes a stub originates
	// (drawn uniformly from 1..Max).
	MaxPrefixesPerOrigin int

	// OriginSampleEvery originates prefixes from every k-th stub only
	// (0 or 1 = every stub). The paper-scale presets use it to keep the
	// announced prefix universe a measured sample — the way collectors
	// see a slice of the real table — while the topology itself stays at
	// full AS count. Non-originating stubs still shape the graph (degree
	// skew, path diversity) and forward routes.
	OriginSampleEvery int

	// IXPs is the number of exchange points with route servers; members
	// are drawn from mid-tier and stub ASes.
	IXPs          int
	IXPMemberSpan int // members per IXP

	// ChurnEvents is how many withdraw/re-announce events the "month"
	// contains; each produces update trains at every collector.
	ChurnEvents int

	// RTBHEvents is how many blackhole episodes (announce /32 with a
	// provider's blackhole community, later withdraw) occur.
	RTBHEvents int

	// CollectorsPerPlatform and PeersPerCollector scale the measurement
	// infrastructure (Table 1's 194 collectors / 5158 peers, scaled down).
	CollectorsPerPlatform map[string]int
	PeersPerCollector     int

	// V6Share is the fraction of origins that also announce an IPv6
	// prefix (the paper's dataset is 8% IPv6).
	V6Share float64

	// Policy mix: probability weights for community propagation modes
	// (forward-all, strip-all, act-strip-own, strip-foreign). They need
	// not sum to 1; they are normalized.
	PropForwardAll   float64
	PropStripAll     float64
	PropActStripOwn  float64
	PropStripForeign float64

	// Service adoption probabilities for transit ASes.
	PBlackholeService float64
	PPrependService   float64
	PLocalPrefService float64
	PLocationTagging  float64

	// POriginTags is the probability a stub tags its announcements with
	// informational communities of its own.
	POriginTags float64
	// PIngressTags is the probability a transit AS tags routes with its
	// own informational communities at ingress.
	PIngressTags float64
	// PBundling is the probability a transit AS adds a community
	// referencing a neighbor AS (community bundling, an off-path source
	// per §4.3).
	PBundling float64
	// PPrivateTag is the probability an origin adds a private-ASN
	// community (the ~400 private ASes of Table 2).
	PPrivateTag float64

	// Tap, when non-nil, is registered on the network before the first
	// origin announcement, so it observes the complete update stream:
	// world construction, churn, and everything a scenario does after.
	// The streaming detection engine (internal/watch) attaches here.
	// Function-valued: excluded from JSON; sweeps leave it nil.
	Tap simnet.UpdateTap `json:"-"`
}

// Preset returns the named scale preset ("tiny", "small", "medium",
// "large", "internet") — the single source of truth for the -scale
// flags and the scenario sweep's scale dimension.
func Preset(name string) (Params, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "small":
		return Small(), nil
	case "medium":
		return Medium(), nil
	case "large":
		return Large(), nil
	case "internet":
		return InternetScale(), nil
	default:
		return Params{}, fmt.Errorf("gen: unknown scale %q (want one of %v)", name, PresetNames())
	}
}

// PresetNames lists the scale presets Preset accepts, smallest first.
func PresetNames() []string { return []string{"tiny", "small", "medium", "large", "internet"} }

// Tiny is the unit-test scale: converges in tens of milliseconds.
func Tiny() Params {
	p := base()
	p.Tier1, p.Mid, p.Stubs = 3, 10, 40
	p.ChurnEvents, p.RTBHEvents = 25, 4
	p.IXPs, p.IXPMemberSpan = 1, 6
	p.CollectorsPerPlatform = map[string]int{"RIS": 1, "RV": 1, "IS": 1, "PCH": 1}
	p.PeersPerCollector = 4
	return p
}

// Small is the default bench scale: a ~250-AS Internet, a second or two
// end to end.
func Small() Params {
	p := base()
	p.Tier1, p.Mid, p.Stubs = 5, 40, 200
	p.ChurnEvents, p.RTBHEvents = 120, 12
	p.IXPs, p.IXPMemberSpan = 2, 12
	p.CollectorsPerPlatform = map[string]int{"RIS": 2, "RV": 2, "IS": 1, "PCH": 3}
	p.PeersPerCollector = 8
	return p
}

// Medium is the headline reproduction scale (~1k ASes).
func Medium() Params {
	p := base()
	p.Tier1, p.Mid, p.Stubs = 8, 120, 900
	p.ChurnEvents, p.RTBHEvents = 400, 30
	p.IXPs, p.IXPMemberSpan = 3, 25
	p.CollectorsPerPlatform = map[string]int{"RIS": 3, "RV": 3, "IS": 2, "PCH": 5}
	p.PeersPerCollector = 10
	return p
}

// Large is the scale-out preset (~10k ASes): full topology with a
// sampled origin set, sized so the delta engine builds and converges it
// in well under a minute on one core (BenchmarkLargeWorldBuild tracks
// the number).
func Large() Params {
	p := base()
	p.Tier1, p.Mid, p.Stubs = 10, 500, 9500
	p.OriginSampleEvery = 32
	p.ChurnEvents, p.RTBHEvents = 80, 10
	p.IXPs, p.IXPMemberSpan = 4, 40
	p.CollectorsPerPlatform = map[string]int{"RIS": 3, "RV": 3, "IS": 2, "PCH": 5}
	p.PeersPerCollector = 12
	return p
}

// InternetScale is the paper-scale preset: ~63k ASes, matching the
// study's April 2018 table ("we observed about 63k ASes"), with the
// degree-skewed provider attachment the generator draws (a few hub
// transits carry thousands of stubs, CAIDA-style). Origins are sampled
// sparsely so the announced prefix universe stays a measured slice —
// the full 63k-AS control plane converges every one of them. Stub ASNs
// run past 65535, so (as in the real table, §4.2/Table 2) the high-ASN
// tail cannot name itself in classic communities; those stubs announce
// untagged or with private-ASN tags only.
func InternetScale() Params {
	p := base()
	p.Tier1, p.Mid, p.Stubs = 12, 1200, 61800
	p.OriginSampleEvery = 1024
	p.ChurnEvents, p.RTBHEvents = 12, 8
	p.IXPs, p.IXPMemberSpan = 6, 60
	p.CollectorsPerPlatform = map[string]int{"RIS": 4, "RV": 4, "IS": 2, "PCH": 6}
	p.PeersPerCollector = 16
	return p
}

func base() Params {
	return Params{
		Seed:                 1,
		MaxPrefixesPerOrigin: 2,
		V6Share:              0.08,
		// The mix is calibrated so the §4 headline shapes hold: >75% of
		// announcements carry communities, half of the on-path ones travel
		// more than half their path, and a visible minority of edges show
		// filtering indications.
		PropForwardAll:    0.55,
		PropStripAll:      0.12,
		PropActStripOwn:   0.20,
		PropStripForeign:  0.13,
		PBlackholeService: 0.35,
		PPrependService:   0.40,
		PLocalPrefService: 0.30,
		PLocationTagging:  0.30,
		POriginTags:       0.85,
		PIngressTags:      0.45,
		PBundling:         0.15,
		PPrivateTag:       0.06,
	}
}

// ASN ranges for generated entities. Everything stays below 2^16 so the
// classic community format can address every AS.
const (
	ASNTier1Base     topo.ASN = 10
	ASNMidBase       topo.ASN = 1000
	ASNStubBase      topo.ASN = 10000
	ASNIXPBase       topo.ASN = 59000
	ASNCollectorBase topo.ASN = 60001
	// ASNInjectorBase hosts attack-platform ASes (PEERING analogue).
	ASNInjectorBase topo.ASN = 61000
)

// ASNIXPBase16 hosts route servers in worlds whose stub range overruns
// the static layout. Route servers mint steering communities under
// their own ASN (ixp.AnnounceToCommunity), so unlike collectors and
// injectors they must stay 16-bit addressable — they park in the gap
// between the mid tier and the stub base.
const ASNIXPBase16 topo.ASN = 9000

// IXPBase returns the first route-server ASN for this parameter set. It
// is the static ASNIXPBase whenever the stub range ends below it (every
// preset through medium, so existing worlds are unchanged); paper-scale
// presets, whose tens of thousands of stubs overrun the static layout,
// use the 16-bit-safe ASNIXPBase16 window instead, keeping route-server
// communities attributable to a real AS.
func (p Params) IXPBase() topo.ASN {
	stubEnd := ASNStubBase + topo.ASN(p.Stubs)
	if stubEnd <= ASNIXPBase {
		return ASNIXPBase
	}
	return ASNIXPBase16
}

// infraBase is the floating base for infrastructure that does not mint
// communities (collectors, injectors) in worlds that overrun the
// static layout.
func (p Params) infraBase() topo.ASN {
	stubEnd := ASNStubBase + topo.ASN(p.Stubs)
	return (stubEnd + 999) / 1000 * 1000
}

// CollectorBase returns the first collector ASN, keeping the static
// offset above the stub range when it overruns the static layout.
func (p Params) CollectorBase() topo.ASN {
	if ASNStubBase+topo.ASN(p.Stubs) <= ASNIXPBase {
		return ASNCollectorBase
	}
	return p.infraBase() + (ASNCollectorBase - ASNIXPBase)
}

// InjectorBase returns the first attack-platform ASN, keeping the
// static offset above the stub range when it overruns the static
// layout.
func (p Params) InjectorBase() topo.ASN {
	if ASNStubBase+topo.ASN(p.Stubs) <= ASNIXPBase {
		return ASNInjectorBase
	}
	return p.infraBase() + (ASNInjectorBase - ASNIXPBase)
}
