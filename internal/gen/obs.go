package gen

import "bgpworms/internal/obs"

// World-construction timing on the process registry: cold builds, warm
// forks, and churn months. One histogram observation per call — the
// cheap end of the obs cost spectrum — and observational only.
var (
	buildSecs = obs.Default.Histogram("gen_build_seconds",
		"cold world build + convergence wall time", obs.DurationBuckets)
	forkSecs = obs.Default.Histogram("gen_fork_seconds",
		"warm snapshot fork wall time", obs.DurationBuckets)
	churnSecs = obs.Default.Histogram("gen_churn_seconds",
		"observation-month churn wall time", obs.DurationBuckets)
)
