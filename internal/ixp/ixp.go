// Package ixp models an Internet Exchange Point route server with the
// community-controlled redistribution services of §5.3/§7.5: members tag
// routes with IXP:peer-AS to selectively advertise to a member and
// 0:peer-AS to suppress advertisement to a member. The route server is
// transparent (never on the AS path — which is why IXP communities show up
// "off-path" in §4.3) and publishes its community evaluation order, the
// property the route-manipulation attack exploits.
package ixp

import (
	"fmt"
	"sort"

	"bgpworms/internal/bgp"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// EvalOrder is the route server's community evaluation order for
// conflicting announce/suppress tags.
type EvalOrder int

// Evaluation orders.
const (
	// SuppressFirst handles "do not advertise to peer" before "advertise
	// to peer" — the order the paper verified at a major IXP, which makes
	// suppression win conflicts.
	SuppressFirst EvalOrder = iota
	// AnnounceFirst handles "advertise to peer" first, making explicit
	// announcement win conflicts.
	AnnounceFirst
)

// String names the order.
func (e EvalOrder) String() string {
	if e == AnnounceFirst {
		return "announce-first"
	}
	return "suppress-first"
}

// RouteServer is a transparent multilateral-peering route server.
type RouteServer struct {
	asn     topo.ASN
	order   EvalOrder
	members []topo.ASN
	rt      *router.Router
	net     *simnet.Network
}

// NewRouteServer creates a route server with the given AS number (used
// only as the community namespace and session identity; it never appears
// on AS paths). Member ASNs must fit in 16 bits to be addressable in
// community values.
func NewRouteServer(asn topo.ASN, order EvalOrder) *RouteServer {
	rs := &RouteServer{asn: asn, order: order}
	rs.rt = router.New(router.Config{
		ASN:         asn,
		Vendor:      router.VendorJuniper,
		Propagation: policy.PropForwardAll,
		Transparent: true,
		ReflectAll:  true,
		Catalog:     policy.NewCatalog(asn),
	})
	return rs
}

// ASN returns the route server's AS number.
func (rs *RouteServer) ASN() topo.ASN { return rs.asn }

// Order returns the published evaluation order.
func (rs *RouteServer) Order() EvalOrder { return rs.order }

// Router exposes the underlying speaker (for simnet attachment). In a
// forked world this resolves through the network, so callers read the
// fork's copy-on-write state.
func (rs *RouteServer) Router() *router.Router { return rs.router() }

// router resolves the route server's speaker in the attached network,
// falling back to the original before attachment.
func (rs *RouteServer) router() *router.Router {
	if rs.net != nil {
		if r := rs.net.Router(rs.asn); r != nil {
			return r
		}
	}
	return rs.rt
}

// mutableRouter resolves the speaker for mutation: in a forked world the
// sealed snapshot router is copy-on-written into the fork first.
func (rs *RouteServer) mutableRouter() *router.Router {
	if rs.net != nil {
		if r := rs.net.MutableRouter(rs.asn); r != nil {
			return r
		}
	}
	return rs.rt
}

// ForkInto clones the route server against a forked network: the member
// list is capacity-clamped so AddMember on the fork reallocates instead
// of reaching the snapshot's backing array.
func (rs *RouteServer) ForkInto(n *simnet.Network) *RouteServer {
	return &RouteServer{
		asn:     rs.asn,
		order:   rs.order,
		members: rs.members[:len(rs.members):len(rs.members)],
		rt:      rs.rt,
		net:     n,
	}
}

// Members lists member ASNs in ascending order.
func (rs *RouteServer) Members() []topo.ASN {
	out := append([]topo.ASN(nil), rs.members...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AnnounceToCommunity returns the "advertise to member" tag for a member.
func (rs *RouteServer) AnnounceToCommunity(member topo.ASN) bgp.Community {
	return bgp.C(uint16(rs.asn), uint16(member))
}

// SuppressToCommunity returns the "do not advertise to member" tag.
func (rs *RouteServer) SuppressToCommunity(member topo.ASN) bgp.Community {
	return bgp.C(0, uint16(member))
}

// AddMember registers a member and rebuilds the service catalog in the
// published evaluation order.
func (rs *RouteServer) AddMember(member topo.ASN) error {
	if member > 0xFFFF {
		return fmt.Errorf("ixp: member AS%d does not fit the 16-bit community format", member)
	}
	for _, m := range rs.members {
		if m == member {
			return fmt.Errorf("ixp: AS%d is already a member", member)
		}
	}
	rs.members = append(rs.members, member)
	rs.rebuildCatalog()
	return nil
}

func (rs *RouteServer) rebuildCatalog() {
	cat := policy.NewCatalog(rs.asn)
	add := func(kind policy.ServiceKind) {
		for _, m := range rs.Members() {
			switch kind {
			case policy.SvcNoAnnounceTo:
				cat.Add(policy.Service{Community: rs.SuppressToCommunity(m), Kind: kind, Param: uint32(m)})
			case policy.SvcAnnounceTo:
				cat.Add(policy.Service{Community: rs.AnnounceToCommunity(m), Kind: kind, Param: uint32(m)})
			}
		}
	}
	if rs.order == SuppressFirst {
		add(policy.SvcNoAnnounceTo)
		add(policy.SvcAnnounceTo)
	} else {
		add(policy.SvcAnnounceTo)
		add(policy.SvcNoAnnounceTo)
	}
	rs.mutableRouter().Config().Catalog = cat
}

// Attach inserts the route server into a network and wires sessions to
// every registered member (members must already exist in the network).
func (rs *RouteServer) Attach(n *simnet.Network) error {
	rs.net = n
	n.AddRouter(rs.rt)
	for _, m := range rs.Members() {
		if err := n.Connect(m, rs.asn, topo.RelPeer); err != nil {
			return err
		}
	}
	return nil
}

// PeerView returns what the route server last advertised to a member for
// a prefix — the "public per-peer view of the accepted prefixes and
// communities" that PEERING exposes (§7.5).
func (rs *RouteServer) PeerView(member topo.ASN) []*policy.Route {
	r := rs.router()
	var out []*policy.Route
	for _, p := range r.Prefixes() {
		if rt, ok := r.Advertised(member, p); ok {
			out = append(out, rt)
		}
	}
	return out
}
