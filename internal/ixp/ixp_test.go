package ixp

import (
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

var pfx = netx.MustPrefix("203.0.113.0/24")

// newIXPNet wires members 100, 200, 300 to a route server AS 900.
func newIXPNet(t *testing.T, order EvalOrder) (*simnet.Network, *RouteServer) {
	t.Helper()
	g := topo.NewGraph()
	for _, m := range []topo.ASN{100, 200, 300} {
		g.AddAS(m)
	}
	n := simnet.New(g, nil)
	rs := NewRouteServer(900, order)
	for _, m := range []topo.ASN{100, 200, 300} {
		if err := rs.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Attach(n); err != nil {
		t.Fatal(err)
	}
	return n, rs
}

func TestMemberManagement(t *testing.T) {
	rs := NewRouteServer(900, SuppressFirst)
	if err := rs.AddMember(100); err != nil {
		t.Fatal(err)
	}
	if err := rs.AddMember(100); err == nil {
		t.Fatal("duplicate member must fail")
	}
	if err := rs.AddMember(70000); err == nil {
		t.Fatal("oversized member ASN must fail")
	}
	if rs.ASN() != 900 || rs.Order() != SuppressFirst {
		t.Fatal("accessors wrong")
	}
	if rs.AnnounceToCommunity(100) != bgp.C(900, 100) {
		t.Fatal("announce community wrong")
	}
	if rs.SuppressToCommunity(100) != bgp.C(0, 100) {
		t.Fatal("suppress community wrong")
	}
	if SuppressFirst.String() == "" || AnnounceFirst.String() == "" {
		t.Fatal("order strings empty")
	}
}

func TestPlainRedistributionToAllMembers(t *testing.T) {
	n, rs := newIXPNet(t, SuppressFirst)
	if _, err := n.Announce(100, pfx); err != nil {
		t.Fatal(err)
	}
	for _, m := range []topo.ASN{200, 300} {
		rt, ok := n.Router(m).BestRoute(pfx)
		if !ok {
			t.Fatalf("member %d missing route", m)
		}
		if rt.ASPath.Contains(900) {
			t.Fatalf("RS on path at member %d: %v", m, rt.ASPath)
		}
		if rt.ASPath.Origin() != 100 {
			t.Fatalf("origin=%d", rt.ASPath.Origin())
		}
	}
	if len(rs.PeerView(200)) != 1 {
		t.Fatal("peer view should show one advertisement")
	}
}

func TestSelectiveAnnounce(t *testing.T) {
	n, rs := newIXPNet(t, SuppressFirst)
	// Announce only to member 200.
	if _, err := n.Announce(100, pfx, rs.AnnounceToCommunity(200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Router(200).BestRoute(pfx); !ok {
		t.Fatal("member 200 should have the route")
	}
	if _, ok := n.Router(300).BestRoute(pfx); ok {
		t.Fatal("member 300 must not have the route")
	}
}

func TestSuppressTo(t *testing.T) {
	n, _ := newIXPNet(t, SuppressFirst)
	rs := NewRouteServer(900, SuppressFirst) // for community construction only
	if _, err := n.Announce(100, pfx, rs.SuppressToCommunity(300)); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Router(200).BestRoute(pfx); !ok {
		t.Fatal("member 200 should have the route")
	}
	if _, ok := n.Router(300).BestRoute(pfx); ok {
		t.Fatal("member 300 must be suppressed")
	}
}

// The §7.5 route-manipulation attack: conflicting announce-to and
// suppress-to tags. With the published suppress-first order, suppression
// wins and the attackee (member 200) loses the route.
func TestConflictResolutionByEvaluationOrder(t *testing.T) {
	run := func(order EvalOrder) bool {
		g := topo.NewGraph()
		for _, m := range []topo.ASN{100, 200, 300} {
			g.AddAS(m)
		}
		n := simnet.New(g, nil)
		rs := NewRouteServer(900, order)
		for _, m := range []topo.ASN{100, 200, 300} {
			rs.AddMember(m)
		}
		rs.Attach(n)
		if _, err := n.Announce(100, pfx, rs.AnnounceToCommunity(200), rs.SuppressToCommunity(200)); err != nil {
			t.Fatal(err)
		}
		_, ok := n.Router(200).BestRoute(pfx)
		return ok
	}
	if run(SuppressFirst) {
		t.Fatal("suppress-first: member 200 must NOT get the route")
	}
	if !run(AnnounceFirst) {
		t.Fatal("announce-first: member 200 must get the route")
	}
}

func TestAttachFailsForUnknownMember(t *testing.T) {
	g := topo.NewGraph()
	g.AddAS(100)
	n := simnet.New(g, nil)
	rs := NewRouteServer(900, SuppressFirst)
	rs.AddMember(100)
	rs.AddMember(200) // not in the network
	if err := rs.Attach(n); err == nil {
		t.Fatal("attach with missing member must fail")
	}
}

func TestDataPlaneThroughFabric(t *testing.T) {
	n, _ := newIXPNet(t, SuppressFirst)
	n.Announce(100, pfx)
	tr := n.Forward(300, netx.NthAddr(pfx, 7))
	if tr.Outcome != simnet.Delivered || tr.FinalAS != 100 {
		t.Fatalf("trace=%s", tr)
	}
}
