// Package mrt implements the MRT routing-information export format
// (RFC 6396) used by every public route-collector platform in the study
// (RIPE RIS, RouteViews, Isolario, PCH): BGP4MP / BGP4MP_ET message
// records and TABLE_DUMP_V2 RIB snapshots.
//
// The AS_PATH inside records uses the 4-octet encoding, matching the
// BGP4MP_MESSAGE_AS4 and TABLE_DUMP_V2 conventions.
package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"bgpworms/internal/bgp"
)

// MRT record types (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
	TypeBGP4MPET    uint16 = 17
)

// BGP4MP subtypes.
const (
	SubtypeBGP4MPStateChange    uint16 = 0
	SubtypeBGP4MPMessage        uint16 = 1
	SubtypeBGP4MPMessageAS4     uint16 = 4
	SubtypeBGP4MPStateChangeAS4 uint16 = 5
)

// TABLE_DUMP_V2 subtypes.
const (
	SubtypePeerIndexTable uint16 = 1
	SubtypeRIBIPv4Unicast uint16 = 2
	SubtypeRIBIPv6Unicast uint16 = 4
)

// Record is any decoded MRT record.
type Record interface {
	// RecordType returns the MRT type code.
	RecordType() uint16
	// RecordSubtype returns the MRT subtype code.
	RecordSubtype() uint16
	// Time returns the record timestamp.
	Time() time.Time
	// appendBody serializes the record body (without MRT header).
	appendBody(dst []byte) ([]byte, error)
}

// BGP4MPMessage is a BGP4MP_MESSAGE_AS4 record: one BGP message observed
// on a collector peering session.
type BGP4MPMessage struct {
	Timestamp time.Time
	// Microsecond precision implies a BGP4MP_ET record on encode.
	ExtendedTime bool
	PeerAS       uint32
	LocalAS      uint32
	IfIndex      uint16
	PeerIP       netip.Addr
	LocalIP      netip.Addr
	Message      bgp.Message
}

// RecordType implements Record.
func (m *BGP4MPMessage) RecordType() uint16 {
	if m.ExtendedTime {
		return TypeBGP4MPET
	}
	return TypeBGP4MP
}

// RecordSubtype implements Record.
func (m *BGP4MPMessage) RecordSubtype() uint16 { return SubtypeBGP4MPMessage + 3 } // MESSAGE_AS4

// Time implements Record.
func (m *BGP4MPMessage) Time() time.Time { return m.Timestamp }

func (m *BGP4MPMessage) appendBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, m.PeerAS)
	dst = binary.BigEndian.AppendUint32(dst, m.LocalAS)
	dst = binary.BigEndian.AppendUint16(dst, m.IfIndex)
	afi := bgp.AFIIPv4
	if m.PeerIP.Is6() {
		afi = bgp.AFIIPv6
	}
	dst = binary.BigEndian.AppendUint16(dst, afi)
	dst = appendAddr(dst, m.PeerIP, afi)
	dst = appendAddr(dst, m.LocalIP, afi)
	wire, err := m.Message.Encode()
	if err != nil {
		return nil, err
	}
	return append(dst, wire...), nil
}

// StateChange is a BGP4MP_STATE_CHANGE_AS4 record.
type StateChange struct {
	Timestamp time.Time
	PeerAS    uint32
	LocalAS   uint32
	IfIndex   uint16
	PeerIP    netip.Addr
	LocalIP   netip.Addr
	OldState  uint16
	NewState  uint16
}

// FSM states for StateChange records.
const (
	StateIdle        uint16 = 1
	StateConnect     uint16 = 2
	StateActive      uint16 = 3
	StateOpenSent    uint16 = 4
	StateOpenConfirm uint16 = 5
	StateEstablished uint16 = 6
)

// RecordType implements Record.
func (s *StateChange) RecordType() uint16 { return TypeBGP4MP }

// RecordSubtype implements Record.
func (s *StateChange) RecordSubtype() uint16 { return SubtypeBGP4MPStateChangeAS4 }

// Time implements Record.
func (s *StateChange) Time() time.Time { return s.Timestamp }

func (s *StateChange) appendBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, s.PeerAS)
	dst = binary.BigEndian.AppendUint32(dst, s.LocalAS)
	dst = binary.BigEndian.AppendUint16(dst, s.IfIndex)
	afi := bgp.AFIIPv4
	if s.PeerIP.Is6() {
		afi = bgp.AFIIPv6
	}
	dst = binary.BigEndian.AppendUint16(dst, afi)
	dst = appendAddr(dst, s.PeerIP, afi)
	dst = appendAddr(dst, s.LocalIP, afi)
	dst = binary.BigEndian.AppendUint16(dst, s.OldState)
	dst = binary.BigEndian.AppendUint16(dst, s.NewState)
	return dst, nil
}

// PeerEntry is one collector peer in a PEER_INDEX_TABLE.
type PeerEntry struct {
	BGPID netip.Addr
	IP    netip.Addr
	AS    uint32
}

// PeerIndexTable is the TABLE_DUMP_V2 peer index, which every RIB record
// references by index.
type PeerIndexTable struct {
	Timestamp   time.Time
	CollectorID netip.Addr
	ViewName    string
	Peers       []PeerEntry
}

// RecordType implements Record.
func (p *PeerIndexTable) RecordType() uint16 { return TypeTableDumpV2 }

// RecordSubtype implements Record.
func (p *PeerIndexTable) RecordSubtype() uint16 { return SubtypePeerIndexTable }

// Time implements Record.
func (p *PeerIndexTable) Time() time.Time { return p.Timestamp }

func (p *PeerIndexTable) appendBody(dst []byte) ([]byte, error) {
	id := p.CollectorID
	if !id.IsValid() || !id.Is4() {
		id = netip.AddrFrom4([4]byte{})
	}
	b := id.As4()
	dst = append(dst, b[:]...)
	if len(p.ViewName) > 0xFFFF {
		return nil, fmt.Errorf("mrt: view name too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.ViewName)))
	dst = append(dst, p.ViewName...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Peers)))
	for _, pe := range p.Peers {
		// Peer type: bit 0 = IPv6 address, bit 1 = 4-byte AS (always set).
		typ := byte(0x02)
		if pe.IP.Is6() {
			typ |= 0x01
		}
		dst = append(dst, typ)
		bid := pe.BGPID
		if !bid.IsValid() || !bid.Is4() {
			bid = netip.AddrFrom4([4]byte{})
		}
		bb := bid.As4()
		dst = append(dst, bb[:]...)
		if pe.IP.Is6() {
			ip := pe.IP.As16()
			dst = append(dst, ip[:]...)
		} else {
			ip := pe.IP.As4()
			dst = append(dst, ip[:]...)
		}
		dst = binary.BigEndian.AppendUint32(dst, pe.AS)
	}
	return dst, nil
}

// RIBEntry is one path for a prefix in a TABLE_DUMP_V2 RIB record.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime time.Time
	Attrs          bgp.PathAttributes
}

// RIB is a TABLE_DUMP_V2 RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record: all
// collector-known paths for one prefix.
type RIB struct {
	Timestamp time.Time
	Sequence  uint32
	Prefix    netip.Prefix
	Entries   []RIBEntry
}

// RecordType implements Record.
func (r *RIB) RecordType() uint16 { return TypeTableDumpV2 }

// RecordSubtype implements Record.
func (r *RIB) RecordSubtype() uint16 {
	if r.Prefix.Addr().Is6() {
		return SubtypeRIBIPv6Unicast
	}
	return SubtypeRIBIPv4Unicast
}

// Time implements Record.
func (r *RIB) Time() time.Time { return r.Timestamp }

func (r *RIB) appendBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, r.Sequence)
	dst = appendRIBPrefix(dst, r.Prefix)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		dst = binary.BigEndian.AppendUint16(dst, e.PeerIndex)
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.OriginatedTime.Unix()))
		attrs := e.Attrs.Encode()
		if len(attrs) > 0xFFFF {
			return nil, fmt.Errorf("mrt: attribute block too long")
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
		dst = append(dst, attrs...)
	}
	return dst, nil
}

func appendAddr(dst []byte, a netip.Addr, afi uint16) []byte {
	if afi == bgp.AFIIPv6 {
		if !a.IsValid() {
			a = netip.IPv6Unspecified()
		}
		b := a.As16()
		return append(dst, b[:]...)
	}
	if !a.IsValid() || !a.Is4() {
		a = netip.AddrFrom4([4]byte{})
	}
	b := a.As4()
	return append(dst, b[:]...)
}

func appendRIBPrefix(dst []byte, p netip.Prefix) []byte {
	p = p.Masked()
	dst = append(dst, byte(p.Bits()))
	n := (p.Bits() + 7) / 8
	if p.Addr().Is4() {
		b := p.Addr().As4()
		return append(dst, b[:n]...)
	}
	b := p.Addr().As16()
	return append(dst, b[:n]...)
}
