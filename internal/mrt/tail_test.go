package mrt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendRecord writes one sample record to the end of path.
func appendRecord(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := NewWriter(f).Write(sampleMessage(false)); err != nil {
		t.Fatal(err)
	}
}

// TestTailReaderFollowsGrowingFile is the bgpcat -follow contract: a
// Reader over a TailReader blocks at end-of-archive and resumes when a
// writer appends, instead of returning io.EOF.
func TestTailReaderFollowsGrowingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "updates.live.mrt")
	appendRecord(t, path)
	appendRecord(t, path)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := NewTailReader(f, time.Millisecond)
	mr := NewReader(tr)

	recs := make(chan Record, 8)
	errs := make(chan error, 1)
	go func() {
		for {
			rec, err := mr.Next()
			if err != nil {
				errs <- err
				return
			}
			recs <- rec
		}
	}()

	read := func(what string) Record {
		t.Helper()
		select {
		case rec := <-recs:
			return rec
		case err := <-errs:
			t.Fatalf("%s: reader ended: %v", what, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: timed out", what)
		}
		return nil
	}

	read("first pre-written record")
	read("second pre-written record")

	// The reader is now blocked mid-tail; a live writer appends.
	appendRecord(t, path)
	if rec := read("appended record"); rec.RecordType() != TypeBGP4MP {
		t.Fatalf("appended record type = %d", rec.RecordType())
	}

	// Stop ends the stream like an ordinary EOF.
	tr.Stop()
	select {
	case err := <-errs:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("after Stop: %v, want io.EOF", err)
		}
	case rec := <-recs:
		t.Fatalf("unexpected record after Stop: %v", rec)
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not end the stream")
	}
}

// TestTailReaderDrainsRaceWithStop pins the drain-on-stop behaviour:
// bytes written before Stop are still delivered.
func TestTailReaderDrainsRaceWithStop(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(sampleMessage(false)); err != nil {
		t.Fatal(err)
	}
	tr := NewTailReader(&buf, time.Millisecond)
	tr.Stop() // stopped before the first read: content must still drain
	mr := NewReader(tr)
	if _, err := mr.Next(); err != nil {
		t.Fatalf("pre-stop bytes lost: %v", err)
	}
	if _, err := mr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF after drain, got %v", err)
	}
}

// TestTailReaderPropagatesErrors pins that non-EOF errors pass through.
func TestTailReaderPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	tr := NewTailReader(errReader{boom}, time.Millisecond)
	if _, err := tr.Read(make([]byte, 16)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }
