package mrt

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
)

var t0 = time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)

func sampleMessage(extended bool) *BGP4MPMessage {
	return &BGP4MPMessage{
		Timestamp:    t0.Add(123456 * time.Microsecond),
		ExtendedTime: extended,
		PeerAS:       64500,
		LocalAS:      65001,
		IfIndex:      3,
		PeerIP:       netip.MustParseAddr("192.0.2.7"),
		LocalIP:      netip.MustParseAddr("192.0.2.1"),
		Message: &bgp.Update{
			Attrs: bgp.PathAttributes{
				Origin:      bgp.OriginIGP,
				ASPath:      bgp.Path(64500, 3320, 1299),
				NextHop:     netip.MustParseAddr("192.0.2.7"),
				Communities: bgp.NewCommunitySet(bgp.C(3320, 2000), bgp.C(1299, 30)),
			},
			NLRI: []netip.Prefix{netx.MustPrefix("203.0.113.0/24")},
		},
	}
}

func roundTrip(t *testing.T, recs ...Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(recs) {
		t.Fatalf("Count=%d want %d", w.Count(), len(recs))
	}
	r := NewReader(&buf)
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
	if len(out) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(out), len(recs))
	}
	return out
}

func TestBGP4MPMessageRoundTrip(t *testing.T) {
	in := sampleMessage(false)
	out := roundTrip(t, in)[0].(*BGP4MPMessage)
	if out.PeerAS != in.PeerAS || out.LocalAS != in.LocalAS || out.IfIndex != in.IfIndex {
		t.Fatalf("session fields: %+v", out)
	}
	if out.PeerIP != in.PeerIP || out.LocalIP != in.LocalIP {
		t.Fatalf("addresses: %s %s", out.PeerIP, out.LocalIP)
	}
	// Non-ET record truncates to second precision.
	if !out.Timestamp.Equal(t0) {
		t.Fatalf("timestamp=%s want %s", out.Timestamp, t0)
	}
	u := out.Message.(*bgp.Update)
	if len(u.NLRI) != 1 || u.NLRI[0].String() != "203.0.113.0/24" {
		t.Fatalf("NLRI=%v", u.NLRI)
	}
	if !u.Attrs.Communities.Has(bgp.C(3320, 2000)) {
		t.Fatalf("communities=%v", u.Attrs.Communities)
	}
}

func TestBGP4MPETMicroseconds(t *testing.T) {
	in := sampleMessage(true)
	out := roundTrip(t, in)[0].(*BGP4MPMessage)
	if !out.Timestamp.Equal(t0.Add(123456 * time.Microsecond)) {
		t.Fatalf("timestamp=%s", out.Timestamp)
	}
}

func TestBGP4MPIPv6Session(t *testing.T) {
	in := sampleMessage(false)
	in.PeerIP = netip.MustParseAddr("2001:db8::7")
	in.LocalIP = netip.MustParseAddr("2001:db8::1")
	in.Message = &bgp.Update{
		Attrs: bgp.PathAttributes{
			Origin:         bgp.OriginIGP,
			ASPath:         bgp.Path(64500),
			MPReachNextHop: netip.MustParseAddr("2001:db8::7"),
			MPReachNLRI:    []netip.Prefix{netx.MustPrefix("2001:db8:f::/48")},
		},
	}
	out := roundTrip(t, in)[0].(*BGP4MPMessage)
	if out.PeerIP != in.PeerIP {
		t.Fatalf("peer ip=%s", out.PeerIP)
	}
	u := out.Message.(*bgp.Update)
	if len(u.Attrs.MPReachNLRI) != 1 {
		t.Fatalf("v6 NLRI lost: %v", u.Attrs.MPReachNLRI)
	}
}

func TestStateChangeRoundTrip(t *testing.T) {
	in := &StateChange{
		Timestamp: t0, PeerAS: 64500, LocalAS: 65001,
		PeerIP: netip.MustParseAddr("192.0.2.7"), LocalIP: netip.MustParseAddr("192.0.2.1"),
		OldState: StateOpenConfirm, NewState: StateEstablished,
	}
	out := roundTrip(t, in)[0].(*StateChange)
	if out.OldState != StateOpenConfirm || out.NewState != StateEstablished || out.PeerAS != 64500 {
		t.Fatalf("%+v", out)
	}
}

func TestPeerIndexTableAndRIBRoundTrip(t *testing.T) {
	pit := &PeerIndexTable{
		Timestamp:   t0,
		CollectorID: netip.MustParseAddr("198.51.100.1"),
		ViewName:    "rrc00",
		Peers: []PeerEntry{
			{BGPID: netip.MustParseAddr("10.0.0.1"), IP: netip.MustParseAddr("192.0.2.7"), AS: 64500},
			{BGPID: netip.MustParseAddr("10.0.0.2"), IP: netip.MustParseAddr("2001:db8::9"), AS: 4200000999},
		},
	}
	rib := &RIB{
		Timestamp: t0,
		Sequence:  7,
		Prefix:    netx.MustPrefix("203.0.113.0/24"),
		Entries: []RIBEntry{{
			PeerIndex:      1,
			OriginatedTime: t0.Add(-time.Hour),
			Attrs: bgp.PathAttributes{
				Origin:      bgp.OriginIGP,
				ASPath:      bgp.Path(64500, 65010),
				NextHop:     netip.MustParseAddr("192.0.2.7"),
				Communities: bgp.NewCommunitySet(bgp.C(64500, 100)),
			},
		}},
	}
	rib6 := &RIB{
		Timestamp: t0, Sequence: 8, Prefix: netx.MustPrefix("2001:db8::/32"),
		Entries: []RIBEntry{{PeerIndex: 0, OriginatedTime: t0, Attrs: bgp.PathAttributes{ASPath: bgp.Path(64500)}}},
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range []Record{pit, rib, rib6} {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)

	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	gotPIT := rec.(*PeerIndexTable)
	if gotPIT.ViewName != "rrc00" || len(gotPIT.Peers) != 2 {
		t.Fatalf("PIT=%+v", gotPIT)
	}
	if gotPIT.Peers[1].AS != 4200000999 || gotPIT.Peers[1].IP != netip.MustParseAddr("2001:db8::9") {
		t.Fatalf("peer[1]=%+v", gotPIT.Peers[1])
	}
	if len(r.PeerTable()) != 2 {
		t.Fatal("reader did not retain peer table")
	}

	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	gotRIB := rec.(*RIB)
	if gotRIB.Prefix.String() != "203.0.113.0/24" || gotRIB.Sequence != 7 {
		t.Fatalf("RIB=%+v", gotRIB)
	}
	e := gotRIB.Entries[0]
	if e.PeerIndex != 1 || !e.OriginatedTime.Equal(t0.Add(-time.Hour)) {
		t.Fatalf("entry=%+v", e)
	}
	if e.Attrs.ASPath.String() != "64500 65010" || !e.Attrs.Communities.Has(bgp.C(64500, 100)) {
		t.Fatalf("attrs=%+v", e.Attrs)
	}

	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got6 := rec.(*RIB)
	if got6.RecordSubtype() != SubtypeRIBIPv6Unicast || got6.Prefix.String() != "2001:db8::/32" {
		t.Fatalf("RIB6=%+v", got6)
	}

	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderErrors(t *testing.T) {
	t.Run("truncated header", func(t *testing.T) {
		r := NewReader(bytes.NewReader([]byte{1, 2, 3}))
		if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("empty is clean EOF", func(t *testing.T) {
		r := NewReader(bytes.NewReader(nil))
		if _, err := r.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("oversized record", func(t *testing.T) {
		hdr := make([]byte, 12)
		hdr[8], hdr[9], hdr[10], hdr[11] = 0xFF, 0xFF, 0xFF, 0xFF
		r := NewReader(bytes.NewReader(hdr))
		if _, err := r.Next(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(sampleMessage(false)); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()[:buf.Len()-5]
		r := NewReader(bytes.NewReader(data))
		if _, err := r.Next(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		hdr := make([]byte, 12)
		hdr[5] = 99 // type
		r := NewReader(bytes.NewReader(hdr))
		if _, err := r.Next(); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestManyRecordsStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 500
	for i := 0; i < n; i++ {
		m := sampleMessage(i%2 == 0)
		m.PeerAS = uint32(64500 + i%10)
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	count := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.(*BGP4MPMessage).PeerAS != uint32(64500+count%10) {
			t.Fatalf("record %d peerAS mismatch", count)
		}
		count++
	}
	if count != n {
		t.Fatalf("read %d records, want %d", count, n)
	}
}

func BenchmarkWriterBGP4MP(b *testing.B) {
	m := sampleMessage(false)
	w := NewWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderBGP4MP(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		if err := w.Write(sampleMessage(false)); err != nil {
			b.Fatal(err)
		}
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				b.Fatal(err)
			}
		}
	}
}
