package mrt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the reader never panics on arbitrary byte streams.
func TestProperty_ReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Mutation robustness over a valid multi-record stream.
func TestMutatedStreamRobustness(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.Write(sampleMessage(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), valid...)
		for f := 0; f < 1+rng.Intn(5); f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		r := NewReader(bytes.NewReader(mut))
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}
