package mrt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the reader never panics on arbitrary byte streams.
func TestProperty_ReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// FuzzMRTRecord is the native fuzzer for MRT record parsing: arbitrary
// byte streams must never panic the reader, and every record that
// decodes must re-encode cleanly and decode again to an identical wire
// image (the writer and reader are each other's inverse on the space of
// valid records). The seed corpus under testdata/fuzz/FuzzMRTRecord
// holds valid BGP4MP/BGP4MP_ET streams and a TABLE_DUMP_V2 snapshot.
func FuzzMRTRecord(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	for i := 0; i < 3; i++ {
		if err := w.Write(sampleMessage(i%2 == 0)); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 16, 0, 4, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			rec, err := r.Next()
			if err != nil {
				return // malformed streams error out; they must not panic
			}
			var buf bytes.Buffer
			if err := NewWriter(&buf).Write(rec); err != nil {
				t.Fatalf("decoded record fails to re-encode: %v", err)
			}
			if _, err := NewReader(bytes.NewReader(buf.Bytes())).Next(); err != nil {
				t.Fatalf("re-encoded record fails to decode: %v", err)
			}
		}
	})
}

// Mutation robustness over a valid multi-record stream.
func TestMutatedStreamRobustness(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.Write(sampleMessage(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), valid...)
		for f := 0; f < 1+rng.Intn(5); f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		r := NewReader(bytes.NewReader(mut))
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}
