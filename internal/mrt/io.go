package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"bgpworms/internal/bgp"
)

// maxRecordLen bounds a single MRT record body to guard against corrupt
// length fields; real dumps stay far below this.
const maxRecordLen = 1 << 20

// Writer emits MRT records to an underlying stream.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Count returns how many records have been written.
func (w *Writer) Count() int { return w.n }

// Write serializes one record with its MRT common header.
func (w *Writer) Write(rec Record) error {
	body, err := rec.appendBody(w.buf[:0])
	if err != nil {
		return err
	}
	w.buf = body[:0] // keep capacity
	var extra []byte
	typ := rec.RecordType()
	if typ == TypeBGP4MPET {
		us := rec.Time().Nanosecond() / 1000
		extra = binary.BigEndian.AppendUint32(nil, uint32(us))
	}
	hdr := make([]byte, 0, 12+len(extra))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(rec.Time().Unix()))
	hdr = binary.BigEndian.AppendUint16(hdr, typ)
	hdr = binary.BigEndian.AppendUint16(hdr, rec.RecordSubtype())
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)+len(extra)))
	hdr = append(hdr, extra...)
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		return err
	}
	w.n++
	return nil
}

// Reader decodes MRT records from a stream. RIB records resolve their peer
// indexes against the most recently seen PEER_INDEX_TABLE.
type Reader struct {
	r     *bufio.Reader
	peers []PeerEntry
	hdr   [12]byte
	body  []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReaderSize(r, 1<<16)} }

// PeerTable returns the peers of the last PEER_INDEX_TABLE seen, enabling
// callers to resolve RIBEntry.PeerIndex.
func (r *Reader) PeerTable() []PeerEntry { return r.peers }

// Next returns the next record, or io.EOF at clean end of stream.
func (r *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("mrt: truncated header: %w", err)
		}
		return nil, err
	}
	ts := time.Unix(int64(binary.BigEndian.Uint32(r.hdr[0:])), 0).UTC()
	typ := binary.BigEndian.Uint16(r.hdr[4:])
	sub := binary.BigEndian.Uint16(r.hdr[6:])
	length := binary.BigEndian.Uint32(r.hdr[8:])
	if length > maxRecordLen {
		return nil, fmt.Errorf("mrt: record length %d exceeds cap", length)
	}
	if cap(r.body) < int(length) {
		r.body = make([]byte, length)
	}
	body := r.body[:length]
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("mrt: truncated body: %w", err)
	}
	if typ == TypeBGP4MPET {
		if len(body) < 4 {
			return nil, fmt.Errorf("mrt: BGP4MP_ET without microseconds")
		}
		us := binary.BigEndian.Uint32(body)
		ts = ts.Add(time.Duration(us) * time.Microsecond)
		body = body[4:]
		typ = TypeBGP4MP
	}
	switch typ {
	case TypeBGP4MP:
		return r.decodeBGP4MP(ts, sub, body)
	case TypeTableDumpV2:
		return r.decodeTableDumpV2(ts, sub, body)
	default:
		return nil, fmt.Errorf("mrt: unsupported record type %d", typ)
	}
}

func (r *Reader) decodeBGP4MP(ts time.Time, sub uint16, body []byte) (Record, error) {
	as4 := sub == SubtypeBGP4MPMessageAS4 || sub == SubtypeBGP4MPStateChangeAS4
	asLen := 2
	if as4 {
		asLen = 4
	}
	need := 2*asLen + 4
	if len(body) < need {
		return nil, fmt.Errorf("mrt: BGP4MP header truncated")
	}
	var peerAS, localAS uint32
	if as4 {
		peerAS = binary.BigEndian.Uint32(body)
		localAS = binary.BigEndian.Uint32(body[4:])
	} else {
		peerAS = uint32(binary.BigEndian.Uint16(body))
		localAS = uint32(binary.BigEndian.Uint16(body[2:]))
	}
	off := 2 * asLen
	ifIndex := binary.BigEndian.Uint16(body[off:])
	afi := binary.BigEndian.Uint16(body[off+2:])
	off += 4
	addrLen := 4
	if afi == bgp.AFIIPv6 {
		addrLen = 16
	}
	if len(body) < off+2*addrLen {
		return nil, fmt.Errorf("mrt: BGP4MP addresses truncated")
	}
	peerIP := addrFrom(body[off:off+addrLen], afi)
	localIP := addrFrom(body[off+addrLen:off+2*addrLen], afi)
	off += 2 * addrLen

	switch sub {
	case SubtypeBGP4MPMessage, SubtypeBGP4MPMessageAS4:
		msg, err := bgp.DecodeMessage(body[off:])
		if err != nil {
			return nil, err
		}
		return &BGP4MPMessage{
			Timestamp: ts, PeerAS: peerAS, LocalAS: localAS, IfIndex: ifIndex,
			PeerIP: peerIP, LocalIP: localIP, Message: msg,
		}, nil
	case SubtypeBGP4MPStateChange, SubtypeBGP4MPStateChangeAS4:
		if len(body) < off+4 {
			return nil, fmt.Errorf("mrt: state change truncated")
		}
		return &StateChange{
			Timestamp: ts, PeerAS: peerAS, LocalAS: localAS, IfIndex: ifIndex,
			PeerIP: peerIP, LocalIP: localIP,
			OldState: binary.BigEndian.Uint16(body[off:]),
			NewState: binary.BigEndian.Uint16(body[off+2:]),
		}, nil
	default:
		return nil, fmt.Errorf("mrt: unsupported BGP4MP subtype %d", sub)
	}
}

func (r *Reader) decodeTableDumpV2(ts time.Time, sub uint16, body []byte) (Record, error) {
	switch sub {
	case SubtypePeerIndexTable:
		return r.decodePeerIndexTable(ts, body)
	case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
		return decodeRIB(ts, sub, body)
	default:
		return nil, fmt.Errorf("mrt: unsupported TABLE_DUMP_V2 subtype %d", sub)
	}
}

func (r *Reader) decodePeerIndexTable(ts time.Time, body []byte) (Record, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("mrt: peer index table truncated")
	}
	pit := &PeerIndexTable{Timestamp: ts, CollectorID: netip.AddrFrom4([4]byte(body[:4]))}
	nameLen := int(binary.BigEndian.Uint16(body[4:]))
	if len(body) < 6+nameLen+2 {
		return nil, fmt.Errorf("mrt: peer index table name truncated")
	}
	pit.ViewName = string(body[6 : 6+nameLen])
	off := 6 + nameLen
	count := int(binary.BigEndian.Uint16(body[off:]))
	off += 2
	for i := 0; i < count; i++ {
		if len(body) < off+5 {
			return nil, fmt.Errorf("mrt: peer entry %d truncated", i)
		}
		typ := body[off]
		bgpID := netip.AddrFrom4([4]byte(body[off+1 : off+5]))
		off += 5
		addrLen, asLen := 4, 2
		if typ&0x01 != 0 {
			addrLen = 16
		}
		if typ&0x02 != 0 {
			asLen = 4
		}
		if len(body) < off+addrLen+asLen {
			return nil, fmt.Errorf("mrt: peer entry %d body truncated", i)
		}
		var ip netip.Addr
		if addrLen == 16 {
			ip = netip.AddrFrom16([16]byte(body[off : off+16]))
		} else {
			ip = netip.AddrFrom4([4]byte(body[off : off+4]))
		}
		off += addrLen
		var as uint32
		if asLen == 4 {
			as = binary.BigEndian.Uint32(body[off:])
		} else {
			as = uint32(binary.BigEndian.Uint16(body[off:]))
		}
		off += asLen
		pit.Peers = append(pit.Peers, PeerEntry{BGPID: bgpID, IP: ip, AS: as})
	}
	r.peers = pit.Peers
	return pit, nil
}

func decodeRIB(ts time.Time, sub uint16, body []byte) (Record, error) {
	if len(body) < 5 {
		return nil, fmt.Errorf("mrt: RIB record truncated")
	}
	rec := &RIB{Timestamp: ts, Sequence: binary.BigEndian.Uint32(body)}
	bits := int(body[4])
	v6 := sub == SubtypeRIBIPv6Unicast
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return nil, fmt.Errorf("mrt: RIB prefix length %d", bits)
	}
	n := (bits + 7) / 8
	if len(body) < 5+n+2 {
		return nil, fmt.Errorf("mrt: RIB prefix truncated")
	}
	if v6 {
		var raw [16]byte
		copy(raw[:], body[5:5+n])
		rec.Prefix = netip.PrefixFrom(netip.AddrFrom16(raw), bits).Masked()
	} else {
		var raw [4]byte
		copy(raw[:], body[5:5+n])
		rec.Prefix = netip.PrefixFrom(netip.AddrFrom4(raw), bits).Masked()
	}
	off := 5 + n
	count := int(binary.BigEndian.Uint16(body[off:]))
	off += 2
	for i := 0; i < count; i++ {
		if len(body) < off+8 {
			return nil, fmt.Errorf("mrt: RIB entry %d truncated", i)
		}
		e := RIBEntry{
			PeerIndex:      binary.BigEndian.Uint16(body[off:]),
			OriginatedTime: time.Unix(int64(binary.BigEndian.Uint32(body[off+2:])), 0).UTC(),
		}
		attrLen := int(binary.BigEndian.Uint16(body[off+6:]))
		off += 8
		if len(body) < off+attrLen {
			return nil, fmt.Errorf("mrt: RIB entry %d attrs truncated", i)
		}
		attrs, err := bgp.DecodeAttributes(body[off : off+attrLen])
		if err != nil {
			return nil, err
		}
		e.Attrs = attrs
		off += attrLen
		rec.Entries = append(rec.Entries, e)
	}
	return rec, nil
}

func addrFrom(b []byte, afi uint16) netip.Addr {
	if afi == bgp.AFIIPv6 {
		return netip.AddrFrom16([16]byte(b[:16]))
	}
	return netip.AddrFrom4([4]byte(b[:4]))
}
