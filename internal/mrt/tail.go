package mrt

import (
	"errors"
	"io"
	"sync"
	"time"
)

// TailReader adapts a growing input — typically an MRT archive a
// collector is still appending to — into a live byte stream: where the
// underlying reader reports io.EOF, TailReader polls for appended bytes
// instead, so a Reader layered on top blocks at end-of-archive and
// resumes when new records land (bgpcat -follow, wormwatchd -mrt
// -follow).
//
// Stop ends the tail: pending and subsequent Reads drain whatever bytes
// remain, then return io.EOF like an ordinary file.
type TailReader struct {
	r    io.Reader
	poll time.Duration
	stop chan struct{}
	once sync.Once
}

// NewTailReader wraps r, polling every poll interval at end-of-input
// (<= 0 means 200ms).
func NewTailReader(r io.Reader, poll time.Duration) *TailReader {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	return &TailReader{r: r, poll: poll, stop: make(chan struct{})}
}

// Read implements io.Reader with EOF converted into a poll-and-retry
// loop until Stop.
func (t *TailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return 0, err
		}
		select {
		case <-t.stop:
			// Stopped: drain any bytes that raced the stop, then EOF.
			n, err := t.r.Read(p)
			if n > 0 {
				return n, nil
			}
			if err != nil && !errors.Is(err, io.EOF) {
				return 0, err
			}
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}

// Stop ends the tail; safe to call from any goroutine and more than
// once.
func (t *TailReader) Stop() { t.once.Do(func() { close(t.stop) }) }
