package attack

import (
	"strings"
	"testing"

	"bgpworms/internal/scenario"
)

// TestDictionaryPoisoning runs the registered scenario end to end: the
// victim dictionary must inflate, the squat value must be masked, and
// inference precision must measurably drop.
func TestDictionaryPoisoning(t *testing.T) {
	res, err := scenario.Run("dictionary-poisoning", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("poisoning failed:\n%s", strings.Join(res.Evidence, "\n"))
	}
	joined := strings.Join(res.Evidence, "\n")
	for _, want := range []string{"after poisoning", "dict-squat silenced", "precision"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("evidence missing %q:\n%s", want, joined)
		}
	}
}

// TestHygieneFiltering sweeps the boundary-scrubbing defense: benign
// propagation must shrink monotonically with the filtering rate and the
// remote RTBH trigger must die at full hygiene.
func TestHygieneFiltering(t *testing.T) {
	res, err := scenario.Run("hygiene-filtering", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("hygiene sweep failed:\n%s", strings.Join(res.Evidence, "\n"))
	}
}

// TestHygieneFilteringBadRates pins parameter validation.
func TestHygieneFilteringBadRates(t *testing.T) {
	_, err := scenario.Run("hygiene-filtering", &scenario.Context{
		Values: scenario.Values{"rates": "0,-5"},
	})
	if err == nil {
		t.Fatal("negative rate accepted")
	}
}

// TestHygieneFilteringSingleRate: a one-cell sweep at rate 0 must find
// the trigger firing and report no monotonicity violation, but cannot
// succeed (the defense is never demonstrated).
func TestHygieneFilteringSingleRate(t *testing.T) {
	res, err := scenario.Run("hygiene-filtering", &scenario.Context{
		Values: scenario.Values{"rates": "0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatalf("single-rate sweep claimed success:\n%s", strings.Join(res.Evidence, "\n"))
	}
}
