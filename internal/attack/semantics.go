package attack

import (
	"fmt"
	"strconv"
	"strings"

	"bgpworms/internal/bgp"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/topo"
)

// This file holds the dictionary-era scenarios: poisoning the inference
// that powers dictionary-aware detection (the worm that grows back),
// and the boundary-scrubbing defense ("Keep your Communities Clean")
// swept over filtering rates.

// RunDictionaryPoisoning models an attacker defeating dictionary-based
// anomaly detection by inflating a victim AS's inferred dictionary
// before squatting on it: announce probes tagged with fabricated
// communities naming the victim, so the squat value is "in vocabulary"
// by the time it is used. The scenario trains a dictionary over a clean
// churn baseline, poisons, and shows (a) the victim's inferred
// dictionary inflates, (b) the squat value moves from
// outside-dictionary (a dict-squat alert) to inside (silence), and (c)
// inference precision against ground truth drops — the detector's
// blind spot is measurable.
func (l *Lab) RunDictionaryPoisoning(values int) (*Result, error) {
	res := &Result{Scenario: "Dictionary Poisoning", Difficulty: Medium}
	res.Insights = append(res.Insights,
		"inferred dictionaries are built from attacker-writable data: whoever can announce can define",
		"a poisoned dictionary turns the dict-squat detector's strength (suppressing recurring values) into a blind spot")
	if values < 1 {
		values = 1
	}

	// The inference under attack observes the live network.
	sem := semantics.NewEngine(semantics.Config{})
	defer sem.Close()
	tapID := l.W.Net.Tap(sem.Tap())
	defer l.W.Net.Untap(tapID)

	// Clean training baseline: a month of ordinary churn.
	if _, err := l.W.RunChurn(); err != nil {
		return nil, err
	}
	clean := sem.Snapshot()

	// Victim and squat value: the classic decoy when the registry has
	// one (so the masked squat is exactly the §7.6 population), else a
	// fabricated :666 on the first mid-tier transit.
	var squat bgp.Community
	if len(l.W.Registry.Likely) > 0 {
		squat = l.W.Registry.Likely[0]
	} else {
		// No decoy in the registry: fabricate one on a transit that
		// documents no RTBH service.
		for _, asn := range l.W.TransitASes() {
			if _, offers := l.W.Catalogs[asn].BlackholeCommunity(); !offers {
				squat = bgp.C(uint16(asn), 666)
				break
			}
		}
		if squat == 0 {
			res.Notef("every transit offers RTBH; no decoy to squat")
			return res, nil
		}
	}
	victim := topo.ASN(squat.ASN())
	cleanEntries := len(clean.AS(squat.ASN()))
	if _, known := clean.Lookup(squat); known {
		res.Notef("squat value %s already in the clean dictionary; nothing to mask", squat)
		return res, nil
	}

	// Poison: one announcement carrying the squat value plus fabricated
	// siblings, all naming the victim. After convergence the values are
	// vocabulary everywhere the probe propagated.
	inj := l.Research
	poison := bgp.NewCommunitySet(squat)
	for i := 0; i < values-1; i++ {
		poison = poison.Add(bgp.C(uint16(victim), uint16(40000+i)))
	}
	if err := l.Announce(inj, inj.OwnPrefix, poison...); err != nil {
		return nil, err
	}
	if err := l.Withdraw(inj, inj.OwnPrefix); err != nil {
		return nil, err
	}
	poisoned := sem.Snapshot()
	poisonedEntries := len(poisoned.AS(squat.ASN()))
	res.Notef("victim AS%d dictionary: %d entries clean, %d after poisoning (+%d)",
		victim, cleanEntries, poisonedEntries, poisonedEntries-cleanEntries)

	_, maskedIn := poisoned.Lookup(squat)
	res.Notef("squat %s: outside clean dictionary, inside poisoned one = %v (dict-squat silenced)", squat, maskedIn)

	// The damage is measurable: precision against ground truth drops.
	truth := l.W.TruthDict()
	pClean := semantics.ScoreAgainst(clean, truth).Precision()
	pPoisoned := semantics.ScoreAgainst(poisoned, truth).Precision()
	res.Notef("inference precision vs ground truth: %.3f clean, %.3f poisoned", pClean, pPoisoned)

	res.Success = poisonedEntries-cleanEntries >= values && maskedIn && pPoisoned < pClean
	return res, nil
}

// hygieneRates parses the scenario's comma-separated percentage list.
func hygieneRates(raw string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(raw, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 0 || v > 100 {
			return nil, fmt.Errorf("attack: bad filtering rate %q (want 0..100)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("attack: empty filtering-rate list")
	}
	return out, nil
}

// RunHygieneFiltering sweeps boundary community scrubbing ("Keep your
// Communities Clean": strip foreign communities at network edges) over
// filtering rates: for each rate it builds a world where that share of
// transit ASes runs strip-foreign (the rest forward-all, all else
// equal — the per-AS RNG streams are unchanged, so worlds differ only
// in propagation mode), then measures how far a benign community
// travels and whether a remote RTBH trigger two hops out still fires.
// Success means the defense works as the paper's §6.2 predicts:
// propagation shrinks monotonically and full hygiene kills the remote
// trigger that rate 0 delivers.
func RunHygieneFiltering(ctx *scenario.Context) (*Result, error) {
	res := &Result{Scenario: "Hygiene Filtering Sweep", Difficulty: Easy}
	res.Insights = append(res.Insights,
		"strip-foreign at boundaries bounds the attack radius the same way it bounds measurement visibility",
		"hygiene is a collective defense: partial adoption shrinks, only near-universal adoption kills")
	rates, err := hygieneRates(ctx.String("rates"))
	if err != nil {
		return nil, err
	}

	type cell struct {
		rate       int
		forwarding int
		rtbhFired  bool
		launchable bool
	}
	var cells []cell
	for _, rate := range rates {
		p := ctx.Gen
		f := float64(rate) / 100
		p.PropStripForeign = f
		p.PropForwardAll = 1 - f
		p.PropStripAll, p.PropActStripOwn = 0, 0
		c := cell{rate: rate}
		l, err := NewLab(p, ctx.VPs)
		if err != nil {
			// Full hygiene leaves no community-forwarding upstream to
			// attach to: the remote-trigger precondition is dead before
			// the attack starts.
			res.Notef("rate %d%%: %v (no propagation path; attack unlaunchable)", rate, err)
			cells = append(cells, c)
			continue
		}
		if ctx.World != nil {
			ctx.World(l.W)
		}
		c.launchable = true
		prop, err := l.PropagationCheck(l.Research)
		if err != nil {
			return nil, err
		}
		c.forwarding = prop.ForwardingTransits
		c.rtbhFired, err = l.remoteRTBHFires()
		if err != nil {
			return nil, err
		}
		res.Notef("rate %d%%: benign tag intact at %d/%d transits; remote RTBH trigger fired=%v",
			rate, prop.ForwardingTransits, prop.TotalTransits, c.rtbhFired)
		cells = append(cells, c)
	}

	monotone := true
	for i := 1; i < len(cells); i++ {
		if cells[i].forwarding > cells[i-1].forwarding {
			monotone = false
			res.Notef("NON-MONOTONE: rate %d%% forwards more than rate %d%%", cells[i].rate, cells[i-1].rate)
		}
	}
	first, last := cells[0], cells[len(cells)-1]
	res.Success = monotone && first.rtbhFired && !last.rtbhFired
	if !first.rtbhFired {
		res.Notef("remote RTBH never fired even unfiltered; sweep proves nothing")
	}
	if last.rtbhFired {
		res.Notef("remote RTBH still fires at %d%% filtering", last.rate)
	}
	return res, nil
}

// remoteRTBHFires attempts the §7.3 remote trigger against the nearest
// RTBH target at least two AS hops out and reports whether the target
// null-routed the prefix.
func (l *Lab) remoteRTBHFires() (bool, error) {
	inj := l.Research
	targets, err := l.FindRTBHTargets(inj, inj.OwnPrefix)
	if err != nil {
		return false, err
	}
	var target RTBHTarget
	for _, t := range targets {
		if t.HopsAway >= 2 {
			target = t
			break
		}
	}
	if target.AS == 0 {
		return false, nil // no trigger can reach that far
	}
	if err := l.Announce(inj, inj.OwnPrefix, target.Community); err != nil {
		return false, err
	}
	defer l.Withdraw(inj, inj.OwnPrefix)
	rt, ok := l.W.Net.LookingGlass(target.AS).Route(inj.OwnPrefix)
	return ok && rt.Blackhole && rt.ASPath.Contains(uint32(inj.ASN)), nil
}
