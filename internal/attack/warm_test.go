package attack

// Scenario-level warm-world equivalence: running any registered
// scenario on a fork of a frozen snapshot must be indistinguishable —
// bit for bit — from running it on a world built from scratch. The
// observables compared are everything a harness can see: the scenario
// Result (JSON), the full update tap stream (world construction
// included, since the warm path replays it), the collector MRT
// archives, every router's final RIB, and the watch/semantics
// evaluation reports built on top.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"bgpworms/internal/gen"
	"bgpworms/internal/policy"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/topo"
	"bgpworms/internal/watch"
)

// warmCombos is the engine × worker matrix the equivalence claim
// covers: every propagation engine under 1/4/16 harness workers.
var warmCombos = []struct {
	engine  string
	workers int
}{
	{"serial", 1}, {"serial", 4}, {"serial", 16},
	{"rounds", 1}, {"rounds", 4}, {"rounds", 16},
	{"delta", 1}, {"delta", 4}, {"delta", 16},
}

// scenarioObservable collapses everything one scenario run exposes.
type scenarioObservable struct {
	result   []byte
	taps     string
	archives []byte
	ribs     string
}

func warmContext(t *testing.T, name, scale, engine string, workers int) *scenario.Context {
	t.Helper()
	grid := scenario.Grid{Scenarios: []string{name}}
	ctx, err := grid.ContextFor(scenario.Cell{
		Scenario: name, Scale: scale, Seed: 1,
		EngineWorkers: workers, Engine: engine,
	})
	if err != nil {
		t.Fatalf("%s: context: %v", name, err)
	}
	return ctx
}

// runObservable executes the scenario (warm when snap is non-nil,
// scratch otherwise) and collapses its observables. Tap events are
// formatted immediately: route pointers in the stream are shared with
// the live network and must not be held.
func runObservable(t *testing.T, name string, ctx *scenario.Context, snap *gen.Snapshot) *scenarioObservable {
	t.Helper()
	var taps strings.Builder
	ctx.Tap = func(from, to topo.ASN, prefix netip.Prefix, rt *policy.Route) {
		fmt.Fprintf(&taps, "%d>%d %s %s\n", from, to, prefix, rt)
	}
	var worlds []*gen.Internet
	ctx.World = func(w *gen.Internet) { worlds = append(worlds, w) }
	ctx.Warm = snap
	res, err := scenario.Run(name, ctx)
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	out := &scenarioObservable{taps: taps.String()}
	if out.result, err = json.Marshal(res); err != nil {
		t.Fatalf("%s: marshal result: %v", name, err)
	}
	var arch bytes.Buffer
	var ribs strings.Builder
	for _, w := range worlds {
		for _, c := range w.Collectors {
			if _, err := c.WriteUpdatesMRT(&arch); err != nil {
				t.Fatalf("%s: updates MRT: %v", name, err)
			}
			if _, err := c.WriteRIBSnapshotMRT(&arch, gen.BaseTime.AddDate(0, 1, 0)); err != nil {
				t.Fatalf("%s: RIB MRT: %v", name, err)
			}
		}
		for _, asn := range w.Net.ASes() {
			r := w.Net.Router(asn)
			for _, rt := range r.RIB() {
				fmt.Fprintf(&ribs, "AS%d %s\n", asn, rt)
			}
		}
	}
	out.archives = arch.Bytes()
	out.ribs = ribs.String()
	return out
}

// diffObservable names the first observable where warm and cold
// diverge; empty means bit-identical.
func diffObservable(cold, warm *scenarioObservable) string {
	if !bytes.Equal(warm.result, cold.result) {
		return fmt.Sprintf("Result JSON diverges:\nwarm: %s\ncold: %s", warm.result, cold.result)
	}
	if warm.taps != cold.taps {
		return "tap streams diverge"
	}
	if !bytes.Equal(warm.archives, cold.archives) {
		return "collector MRT archives diverge"
	}
	if warm.ribs != cold.ribs {
		return "final RIBs diverge"
	}
	return ""
}

// forkableScenarios lists every registered scenario that runs on a
// harness-provided world (scenarios managing their own worlds never
// fork a snapshot, so the warm path does not exist for them).
func forkableScenarios(t *testing.T) []string {
	t.Helper()
	var out []string
	managed := 0
	for _, name := range scenario.Names() {
		s, ok := scenario.Get(name)
		if !ok {
			t.Fatalf("registry lists unknown scenario %q", name)
		}
		if s.ManagesWorlds {
			managed++
			continue
		}
		out = append(out, name)
	}
	if managed == 0 {
		t.Fatal("expected at least one ManagesWorlds scenario (hygiene-filtering) to exercise the skip path")
	}
	return out
}

// checkScenarioMatrix runs every forkable scenario cold and warm over
// the given combos on one scale, sharing one frozen snapshot per combo
// across scenarios — exactly the reuse pattern the sweep and suite
// harnesses rely on.
func checkScenarioMatrix(t *testing.T, scale string, combos []struct {
	engine  string
	workers int
}) {
	t.Helper()
	names := forkableScenarios(t)
	for _, v := range combos {
		v := v
		t.Run(fmt.Sprintf("%s/%s/w%d", scale, v.engine, v.workers), func(t *testing.T) {
			base := warmContext(t, names[0], scale, v.engine, v.workers)
			snap, err := gen.BuildSnapshot(base.Gen)
			if err != nil {
				t.Fatalf("freeze %s/%s/%d: %v", scale, v.engine, v.workers, err)
			}
			for _, name := range names {
				cold := runObservable(t, name, warmContext(t, name, scale, v.engine, v.workers), nil)
				warm := runObservable(t, name, warmContext(t, name, scale, v.engine, v.workers), snap)
				if msg := diffObservable(cold, warm); msg != "" {
					t.Errorf("%s on %s/%s/%d: %s", name, scale, v.engine, v.workers, msg)
				}
			}
		})
	}
}

// TestWarmScenarioEquivalence is the tiny-scale matrix: all engines,
// all worker counts (a reduced diagonal in -short mode).
func TestWarmScenarioEquivalence(t *testing.T) {
	combos := warmCombos
	if testing.Short() {
		combos = combos[:0:0]
		combos = append(combos, warmCombos[0], warmCombos[4], warmCombos[6]) // serial/1, rounds/4, delta/1
	}
	checkScenarioMatrix(t, "tiny", combos)
}

// TestWarmScenarioEquivalenceSmall covers the small preset on the
// delta engine across worker counts (the full matrix runs on tiny;
// small guards against tiny-only coincidences).
func TestWarmScenarioEquivalenceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("small-scale warm equivalence skipped in -short mode")
	}
	checkScenarioMatrix(t, "small", []struct {
		engine  string
		workers int
	}{
		{"delta", 1}, {"delta", 4}, {"delta", 16},
	})
}

// TestWarmEvalScenarioEquivalence runs the watch evaluation loop —
// the engine tap, detector replay, and scoring — warm and cold per
// scenario and requires byte-identical reports. This is the suite
// harness's exact code path.
func TestWarmEvalScenarioEquivalence(t *testing.T) {
	base := warmContext(t, "rtbh", "tiny", "delta", 1)
	snap, err := gen.BuildSnapshot(base.Gen)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range forkableScenarios(t) {
		cold, err := watch.EvalScenario(name, warmContext(t, name, "tiny", "delta", 1), watch.Config{Shards: 2})
		if err != nil {
			t.Fatalf("%s: cold eval: %v", name, err)
		}
		wctx := warmContext(t, name, "tiny", "delta", 1)
		wctx.Warm = snap
		warm, err := watch.EvalScenario(name, wctx, watch.Config{Shards: 2})
		if err != nil {
			t.Fatalf("%s: warm eval: %v", name, err)
		}
		cj, _ := json.Marshal(cold)
		wj, _ := json.Marshal(warm)
		if !bytes.Equal(cj, wj) {
			t.Errorf("%s: warm EvalScenario report diverges from cold:\nwarm: %s\ncold: %s", name, wj, cj)
		}
	}
}

// TestWarmDictEvalEquivalence runs the dictionary-inference evaluation
// warm and cold for the scenario that attacks the dictionary itself.
func TestWarmDictEvalEquivalence(t *testing.T) {
	const name = "dictionary-poisoning"
	base := warmContext(t, name, "tiny", "delta", 1)
	snap, err := gen.BuildSnapshot(base.Gen)
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := watch.EvalDictionaryScenario(name, warmContext(t, name, "tiny", "delta", 1), semantics.Config{Workers: 1})
	if err != nil {
		t.Fatalf("cold dict eval: %v", err)
	}
	wctx := warmContext(t, name, "tiny", "delta", 1)
	wctx.Warm = snap
	warm, _, err := watch.EvalDictionaryScenario(name, wctx, semantics.Config{Workers: 1})
	if err != nil {
		t.Fatalf("warm dict eval: %v", err)
	}
	cj, _ := json.Marshal(cold)
	wj, _ := json.Marshal(warm)
	if !bytes.Equal(cj, wj) {
		t.Errorf("warm EvalDictionaryScenario report diverges from cold:\nwarm: %s\ncold: %s", wj, cj)
	}
}

// TestWarmIncompatibleSnapshotIsLoud pins the failure mode: a warm
// snapshot built for different generator parameters must error, never
// silently rebuild.
func TestWarmIncompatibleSnapshotIsLoud(t *testing.T) {
	base := warmContext(t, "rtbh", "tiny", "delta", 1)
	snap, err := gen.BuildSnapshot(base.Gen)
	if err != nil {
		t.Fatal(err)
	}
	ctx := warmContext(t, "rtbh", "tiny", "rounds", 1)
	ctx.Warm = snap
	if _, err := scenario.Run("rtbh", ctx); err == nil {
		t.Fatal("mismatched warm snapshot accepted silently")
	}
}
