package attack

import (
	"strings"
	"testing"

	"bgpworms/internal/topo"
)

func TestCommunitySetResolution(t *testing.T) {
	l := newLab(t)
	ver, err := l.CommunitySet("verified")
	if err != nil || len(ver) != len(l.W.Registry.Verified) {
		t.Fatalf("verified set: %v len=%d", err, len(ver))
	}
	all, err := l.CommunitySet("all")
	if err != nil || len(all) != len(l.W.Registry.All()) {
		t.Fatalf("all set: %v len=%d", err, len(all))
	}
	if def, _ := l.CommunitySet(""); len(def) != len(ver) {
		t.Fatal("empty name must default to verified")
	}
	if _, err := l.CommunitySet("bogus"); err == nil {
		t.Fatal("unknown set accepted")
	}
}

func TestRunPropagationDistance(t *testing.T) {
	l := newLab(t)
	res, err := l.RunPropagationDistance()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("tag never crossed an intermediate AS: %v", res.Evidence)
	}
	// Cleanup: the probe must be withdrawn.
	if _, ok := l.W.Net.Router(l.Research.Upstreams[0]).BestRoute(l.Research.OwnPrefix); ok {
		t.Fatal("probe left announced")
	}
}

func TestRunBlackholeSquat(t *testing.T) {
	l := newLab(t)
	if len(l.W.Registry.Likely) == 0 {
		t.Skip("tiny topology generated no decoys")
	}
	res, err := l.RunBlackholeSquat()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("decoy community was not inert: %v", res.Evidence)
	}
}

func TestRunSelectivePrepend(t *testing.T) {
	l := newLab(t)
	res, err := l.RunSelectivePrepend(2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("selective prepend did not move any transit: %v", res.Evidence)
	}
	// Selectivity evidence must report bystanders.
	joined := strings.Join(res.Evidence, "\n")
	if !strings.Contains(joined, "bystanders") {
		t.Fatalf("no bystander accounting in evidence: %v", res.Evidence)
	}
}

func TestRunRouteLeakAmplification(t *testing.T) {
	l := newLab(t)
	res, err := l.RunRouteLeakAmplification()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("amplification failed: %v", res.Evidence)
	}
	if !res.Hijack {
		t.Fatal("a leak is a hijack-class result")
	}
}

func TestEnsurePrependTargetProvisioning(t *testing.T) {
	l := newLab(t)
	target, via, svc := l.ensurePrependTarget(2)
	if target == 0 {
		t.Fatal("no prepend target even after provisioning")
	}
	if via != l.Research.Upstreams[0] && via != l.Research.Upstreams[1] {
		t.Fatalf("via AS%d is not a research upstream", via)
	}
	if svc.Param < 2 {
		t.Fatalf("service prepends only x%d", svc.Param)
	}
	// Idempotent: a second call finds the same class of target.
	t2, _, _ := l.ensurePrependTarget(2)
	if t2 == 0 {
		t.Fatal("provisioned target not found on re-lookup")
	}
	if l.W.Graph.IsTransit(topo.ASN(0)) {
		t.Fatal("sanity")
	}
}
