package attack

import (
	"bgpworms/internal/scenario"
)

// The attack package registers every lab scenario into the
// internal/scenario registry at init, so importing attack (as
// cmd/attacklab and the examples do) populates the catalog.
func init() {
	for _, s := range builtinScenarios() {
		scenario.Register(s)
	}
}

// hijackParam is shared by the Table 3 scenarios that have a hijack
// variant.
var hijackParam = scenario.Param{
	Name: "hijack", Kind: scenario.KindBool, Default: "false",
	Help: "announce a victim's prefix (IRR-circumvented hijack) instead of own space",
}

// withLab builds a fresh lab from the context and hands it to run. Every
// run gets its own world — forked from the context's warm snapshot when
// one is provided, built from scratch otherwise — so registered
// scenarios are safe to execute concurrently from the sweep harness.
func withLab(run func(l *Lab, ctx *scenario.Context) (*Result, error)) scenario.RunFunc {
	return func(ctx *scenario.Context) (*Result, error) {
		l, err := newLabFor(ctx)
		if err != nil {
			return nil, err
		}
		if ctx.World != nil {
			ctx.World(l.W)
		}
		return run(l, ctx)
	}
}

// newLabFor builds the lab a context asks for: a warm fork when the
// context carries a compatible snapshot, a scratch build otherwise. An
// incompatible snapshot is an error, never a silent rebuild — the warm
// path's whole claim is equivalence with the cold one.
func newLabFor(ctx *scenario.Context) (*Lab, error) {
	if ctx.Warm != nil {
		if err := ctx.Warm.Compatible(ctx.Gen); err != nil {
			return nil, err
		}
		return NewWarmLab(ctx.Warm, ctx.VPs, ctx.Tap)
	}
	return NewLab(ctx.Gen, ctx.VPs)
}

func builtinScenarios() []*scenario.Scenario {
	return []*scenario.Scenario{
		{
			Name:       "rtbh",
			Title:      "Blackholing",
			Section:    "§7.3",
			Summary:    "trigger a remote provider's RTBH service against a prefix two AS hops away",
			Difficulty: scenario.Easy,
			Expected:   scenario.Expectation{Plain: true, Hijack: true},
			Params:     []scenario.Param{hijackParam},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunRTBH(ctx.Bool("hijack"))
			}),
		},
		{
			Name:       "steering-localpref",
			Title:      "Traffic Steering (local pref)",
			Section:    "§7.4",
			Summary:    "depreference a path at a remote target via its customer-fallback community",
			Difficulty: scenario.Hard,
			Expected:   scenario.Expectation{Plain: true, Hijack: true},
			Params:     []scenario.Param{hijackParam},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunSteeringLocalPref(ctx.Bool("hijack"))
			}),
		},
		{
			Name:       "steering-prepend",
			Title:      "Traffic Steering (prepending)",
			Section:    "§7.4",
			Summary:    "lengthen paths through a remote target via its prepend community (Figure 2)",
			Difficulty: scenario.Hard,
			Expected:   scenario.Expectation{Plain: true, Hijack: true},
			Params:     []scenario.Param{hijackParam},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunSteeringPrepend(ctx.Bool("hijack"))
			}),
		},
		{
			Name:       "route-manipulation",
			Title:      "Route Manipulation",
			Section:    "§7.5",
			Summary:    "veto another IXP member's route with conflicting announce/suppress communities (Figure 9)",
			Difficulty: scenario.Medium,
			Expected:   scenario.Expectation{Plain: true, Hijack: true},
			Params:     []scenario.Param{hijackParam},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunRouteManipulation(ctx.Bool("hijack"))
			}),
		},
		{
			Name:       "blackhole-sweep",
			Title:      "Automated Blackhole Sweep",
			Section:    "§7.6",
			Summary:    "sweep a candidate community set, diffing VP reachability per candidate, run twice for stability",
			Difficulty: scenario.Easy,
			Expected:   scenario.Expectation{Plain: true},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				cands, err := l.CommunitySet(ctx.CommunitySet)
				if err != nil {
					return nil, err
				}
				rep, err := l.BlackholeSweep(cands)
				if err != nil {
					return nil, err
				}
				res := &Result{Scenario: "Automated Blackhole Sweep", Difficulty: Easy}
				ind := rep.InducingCommunities()
				p, r := rep.PrecisionRecall()
				res.Notef("%d/%d candidates (%s set) induced VP loss; %d/%d VPs affected",
					len(ind), len(rep.Entries), ctx.CommunitySet, len(rep.AffectedVPs()), rep.TotalVPs)
				res.Notef("precision=%.2f recall=%.2f stable=%v", p, r, rep.Stable)
				res.Insights = append(res.Insights,
					"one platform and ~50 VPs suffice to verify blackhole triggers at scale (§7.6)")
				// Success: the re-run matched and inference was clean — no
				// decoy ever induced loss. Zero inducing candidates is a
				// coverage limit (no VP routes via any target), not a
				// failure.
				clean := true
				for _, e := range rep.Entries {
					if e.Induced() && !e.Verified {
						clean = false
					}
				}
				if len(ind) == 0 {
					res.Notef("no sampled VP routes via any target; coverage, not inference, limits recall")
				}
				res.Success = rep.Stable && clean
				return res, nil
			}),
		},
		{
			Name:       "propagation-distance",
			Title:      "Propagation Distance Probe",
			Section:    "§4.4/§7.2",
			Summary:    "announce a benign-tagged probe and measure how many AS hops the tag survives",
			Difficulty: scenario.Easy,
			Expected:   scenario.Expectation{Plain: true},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunPropagationDistance()
			}),
		},
		{
			Name:       "blackhole-squatting",
			Title:      "Blackhole Squatting",
			Section:    "§7.6",
			Summary:    "tag a decoy 666-valued community of a non-RTBH AS and verify it is inert everywhere",
			Difficulty: scenario.Easy,
			Expected:   scenario.Expectation{Plain: true},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunBlackholeSquat()
			}),
		},
		{
			Name:       "selective-prepend",
			Title:      "Traffic Steering (selective prepend)",
			Section:    "§7.4",
			Summary:    "move only the flows crossing the target AS, leaving bystander paths and reachability intact",
			Difficulty: scenario.Hard,
			Expected:   scenario.Expectation{Plain: true},
			Params: []scenario.Param{{
				Name: "min-prepend", Kind: scenario.KindInt, Default: "2",
				Help: "minimum prepend count the target's community service must offer",
			}},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunSelectivePrepend(ctx.Int("min-prepend"))
			}),
		},
		{
			Name:       "dictionary-poisoning",
			Title:      "Dictionary Poisoning",
			Section:    "§7.6/Krenc",
			Summary:    "inflate a victim AS's inferred community dictionary to mask a later squat from dict-aware detection",
			Difficulty: scenario.Medium,
			Expected:   scenario.Expectation{Plain: true},
			Params: []scenario.Param{{
				Name: "values", Kind: scenario.KindInt, Default: "24",
				Help: "fabricated victim-ASN community values to inject",
			}},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunDictionaryPoisoning(ctx.Int("values"))
			}),
		},
		{
			Name:       "hygiene-filtering",
			Title:      "Hygiene Filtering Sweep",
			Section:    "§6.2",
			Summary:    "sweep strip-foreign boundary scrubbing over filtering rates; propagation shrinks, remote RTBH dies",
			Difficulty: scenario.Easy,
			Expected:   scenario.Expectation{Plain: true},
			Params: []scenario.Param{{
				Name: "rates", Kind: scenario.KindString, Default: "0,25,50,75,100",
				Help: "comma-separated strip-foreign adoption percentages to sweep",
			}},
			// Builds one world per rate, so it manages labs itself; warm
			// harnesses must not provision a snapshot it would never fork.
			Run:           RunHygieneFiltering,
			ManagesWorlds: true,
		},
		{
			Name:       "route-leak-amplification",
			Title:      "Route Leak Amplification",
			Section:    "§5.2/§7.3",
			Summary:    "turn a low-impact route leak into a traffic sink with a provider's local-pref-raise community",
			Difficulty: scenario.Medium,
			// A leak is inherently a hijack-class announcement; there is
			// no plain variant.
			Expected: scenario.Expectation{Hijack: true},
			Run: withLab(func(l *Lab, ctx *scenario.Context) (*Result, error) {
				return l.RunRouteLeakAmplification()
			}),
		},
	}
}
