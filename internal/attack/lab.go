// Package attack reproduces the paper's active experiments (§5–§7): two
// injection platforms (a PEERING-testbed analogue and a small research
// network), benign-community propagation checking (§7.2), the remotely
// triggered blackholing, traffic steering, and route manipulation
// scenarios with and without hijacking (§7.3–§7.5, Table 3), and the
// automated blackhole-community sweep over Atlas vantage points (§7.6).
package attack

import (
	"fmt"
	"net/netip"
	"sort"

	"bgpworms/internal/atlas"
	"bgpworms/internal/bgp"
	"bgpworms/internal/gen"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// Injector is an attack platform: an AS under experimenter control that
// can originate prefixes with arbitrary communities (§7.1).
type Injector struct {
	Name string
	ASN  topo.ASN
	// OwnPrefix is the platform's allocated experiment space.
	OwnPrefix netip.Prefix
	// Upstreams are the transit sessions, nearest first.
	Upstreams []topo.ASN
	// AllowedPrefixes is the IRR state registered for this injector at
	// validating upstreams; "updating the IRR" (§7.3) appends here.
	AllowedPrefixes *policy.PrefixList
	// HijackForbidden mirrors the PEERING AUP: "we only announce prefixes
	// we control" (§7.1).
	HijackForbidden bool
}

// Lab is a complete experimental setup over a generated Internet.
type Lab struct {
	W *gen.Internet
	// Research is a stub with two upstream providers, one of which
	// propagates communities (§7.2).
	Research *Injector
	// Peering is the multi-PoP platform peering widely (route servers
	// plus several transits).
	Peering *Injector
	// Atlas provides the vantage points.
	Atlas *atlas.Platform
}

// Experiment prefix space, disjoint from generated allocations.
var (
	researchPrefix = netx.MustPrefix("198.18.0.0/24")
	peeringPrefix  = netx.MustPrefix("198.18.64.0/24")
	sweepPrefix    = netx.MustPrefix("198.18.128.0/24")
)

// NewLab builds the Internet, attaches both injectors, and draws nVPs
// vantage points from the stub population.
func NewLab(p gen.Params, nVPs int) (*Lab, error) {
	w, err := gen.Build(p)
	if err != nil {
		return nil, err
	}
	return newLabOver(w, nVPs)
}

// NewWarmLab forks a frozen world snapshot instead of building from
// scratch and attaches the identical lab infrastructure. Because the
// snapshot is frozen immediately after gen.Build — before any injector,
// IRR state, or catalog edit exists — the fork runs the exact same
// attachment code a scratch lab runs, so a warm lab is bit-identical to
// a cold one built from the snapshot's parameters.
func NewWarmLab(s *gen.Snapshot, nVPs int, tap simnet.UpdateTap) (*Lab, error) {
	w, err := s.Fork(tap)
	if err != nil {
		return nil, err
	}
	return newLabOver(w, nVPs)
}

func newLabOver(w *gen.Internet, nVPs int) (*Lab, error) {
	l := &Lab{W: w}
	if err := l.attachResearch(); err != nil {
		return nil, err
	}
	if err := l.attachPeering(); err != nil {
		return nil, err
	}
	l.Atlas = atlas.New(w.Net, w.StubASes(), nVPs, w.Params.Seed+7)
	return l, nil
}

// mutableCatalog returns a lab-private clone of the AS's service
// catalog, installed both in the world's ground-truth map and on the
// (copy-on-write) router. It always clones — on cold labs too — so the
// warm and scratch paths mutate byte-identical state.
func (l *Lab) mutableCatalog(asn topo.ASN) *policy.Catalog {
	cat := l.W.Catalogs[asn].Clone()
	l.W.Catalogs[asn] = cat
	if r := l.W.Net.MutableRouter(asn); r != nil {
		r.Config().Catalog = cat
	}
	return cat
}

// attachResearch wires a stub AS with exactly two upstream mids: one
// community-transparent, one stripping (the §7.2 observation that "only
// one of the upstream providers propagates communities").
func (l *Lab) attachResearch() error {
	asn := l.W.Params.InjectorBase()
	mids := l.W.TransitASes()
	var forwarder, stripper topo.ASN
	for _, m := range mids {
		r := l.W.Net.Router(m)
		if r == nil {
			continue
		}
		mode := r.Config().Propagation
		if forwarder == 0 && mode == policy.PropForwardAll && len(l.W.Graph.Providers(m)) > 0 {
			forwarder = m
			continue
		}
		if stripper == 0 && mode == policy.PropStripAll {
			stripper = m
		}
		if forwarder != 0 && stripper != 0 {
			break
		}
	}
	if forwarder == 0 {
		return fmt.Errorf("attack: no community-forwarding upstream found")
	}
	if stripper == 0 {
		stripper = mids[0]
	}
	inj := router.New(router.Config{ASN: asn, Vendor: router.VendorJuniper, Propagation: policy.PropForwardAll})
	l.W.Net.AddRouter(inj)
	for _, up := range []topo.ASN{forwarder, stripper} {
		if err := l.W.Net.Connect(asn, up, topo.RelProvider); err != nil {
			return err
		}
	}
	// The research network's providers validate customer origins against
	// IRR state (§7.3: "the hijack based attack required updating the
	// IRR"). Enabling validation at an upstream requires IRR entries for
	// all its existing customers too, or their routes would vanish.
	allowed := &policy.PrefixList{}
	allowed.AddRange(researchPrefix, 24, 32)
	for _, up := range []topo.ASN{forwarder, stripper} {
		cfg := l.W.Net.MutableRouter(up).Config()
		if cfg.CustomerPrefixes == nil {
			cfg.CustomerPrefixes = map[topo.ASN]*policy.PrefixList{}
		}
		for _, cust := range l.W.Graph.Customers(up) {
			pl := &policy.PrefixList{}
			for _, p := range l.W.Origins[cust] {
				pl.AddRange(p, p.Bits(), p.Addr().BitLen())
			}
			// Transit customers relay third-party space; give them a
			// permissive entry (IRR data is famously loose there).
			if l.W.Graph.IsTransit(cust) {
				pl.AddRange(netx.MustPrefix("0.0.0.0/0"), 0, 32)
				pl.AddRange(netx.MustPrefix("::/0"), 0, 128)
			}
			cfg.CustomerPrefixes[cust] = pl
		}
		cfg.CustomerPrefixes[asn] = allowed
		cfg.ValidateOrigin = true
	}
	l.Research = &Injector{
		Name: "research", ASN: asn, OwnPrefix: researchPrefix,
		Upstreams:       []topo.ASN{forwarder, stripper},
		AllowedPrefixes: allowed,
	}
	l.ensureRTBHProvider(forwarder)
	return nil
}

// ensureRTBHProvider guarantees a blackhole-offering provider exists two
// hops from the research injector, mirroring the paper's target selection
// ("we select a provider that both supports RTBH and offers a public
// looking glass", §7.3). If no provider of `near` offers the service, the
// nearest one is configured with it and the ground-truth registry is
// updated.
func (l *Lab) ensureRTBHProvider(near topo.ASN) topo.ASN {
	provs := l.W.Graph.Providers(near)
	for _, p := range provs {
		if _, ok := l.W.Catalogs[p].BlackholeCommunity(); ok {
			return p
		}
	}
	if len(provs) == 0 {
		return 0
	}
	p := provs[0]
	bh := bgp.C(uint16(p), 666)
	l.mutableCatalog(p).Add(policy.Service{Community: bh, Kind: policy.SvcBlackhole})
	l.W.Net.MutableRouter(p).Config().BlackholeMinLen = 24
	// Keep the registry's ground truth consistent: the community is now a
	// verified trigger, not a decoy. Filter into a fresh slice — a warm
	// lab's Likely shares its backing array with the frozen snapshot.
	likely := make([]bgp.Community, 0, len(l.W.Registry.Likely))
	for _, c := range l.W.Registry.Likely {
		if c != bh {
			likely = append(likely, c)
		}
	}
	l.W.Registry.Likely = likely
	l.W.Registry.Verified = append(l.W.Registry.Verified, bh)
	sort.Slice(l.W.Registry.Verified, func(i, j int) bool { return l.W.Registry.Verified[i] < l.W.Registry.Verified[j] })
	return p
}

// attachPeering wires the PEERING analogue: sessions to every IXP route
// server plus several transit providers.
func (l *Lab) attachPeering() error {
	asn := l.W.Params.InjectorBase() + 1
	inj := router.New(router.Config{ASN: asn, Vendor: router.VendorJuniper, Propagation: policy.PropForwardAll})
	l.W.Net.AddRouter(inj)
	var ups []topo.ASN
	for _, rs := range l.W.RouteServers {
		if err := rs.AddMember(asn); err != nil {
			return err
		}
		if err := l.W.Net.Connect(asn, rs.ASN(), topo.RelPeer); err != nil {
			return err
		}
		ups = append(ups, rs.ASN())
	}
	mids := l.W.TransitASes()
	span := 4
	if span > len(mids) {
		span = len(mids)
	}
	for i := 0; i < span; i++ {
		up := mids[(i*7)%len(mids)]
		if l.W.Net.Router(asn).NeighborRel(up) != topo.RelNone {
			continue
		}
		if err := l.W.Net.Connect(asn, up, topo.RelProvider); err != nil {
			return err
		}
		ups = append(ups, up)
	}
	allowed := (&policy.PrefixList{}).AddRange(peeringPrefix, 24, 32)
	allowed.AddRange(sweepPrefix, 24, 32) // the §7.6 experiment allocation
	l.Peering = &Injector{
		Name: "peering", ASN: asn, OwnPrefix: peeringPrefix, Upstreams: ups,
		AllowedPrefixes: allowed,
		HijackForbidden: true,
	}
	return nil
}

// Announce originates p from the injector with communities, running to
// convergence. Hijacks (prefixes outside the injector's allocation) fail
// when the platform forbids them.
func (l *Lab) Announce(inj *Injector, p netip.Prefix, comms ...bgp.Community) error {
	if inj.HijackForbidden && !inj.AllowedPrefixes.Matches(p) {
		return fmt.Errorf("attack: %s AUP forbids announcing %s", inj.Name, p)
	}
	_, err := l.W.Net.Announce(inj.ASN, p, comms...)
	return err
}

// Withdraw removes an injector announcement.
func (l *Lab) Withdraw(inj *Injector, p netip.Prefix) error {
	_, err := l.W.Net.Withdraw(inj.ASN, p)
	return err
}

// UpdateIRR registers p as allowed origin space for the research
// injector at its upstreams — circumventing origin validation the way
// §7.3 describes ("even when they do [validate], it is often easy to
// circumvent").
func (l *Lab) UpdateIRR(inj *Injector, p netip.Prefix) {
	inj.AllowedPrefixes.AddRange(p, p.Bits(), 32)
}

// RTBHTargets lists transit ASes offering a blackhole service, sorted by
// AS distance from the injector (looking-glass-equipped providers the
// paper selects targets from). Distance is measured on the converged
// route for probe prefix p.
type RTBHTarget struct {
	AS        topo.ASN
	Community bgp.Community
	HopsAway  int
}

// FindRTBHTargets announces a benign-tagged probe from the injector and
// keeps only providers that received the community on ANY session —
// community propagation to the target is the necessary condition (§5.4).
// Adj-RIB-In is the right place to look: during a real attack the
// blackhole tag raises the route's precedence, so it need not be best
// beforehand.
func (l *Lab) FindRTBHTargets(inj *Injector, probe netip.Prefix) ([]RTBHTarget, error) {
	benign := bgp.C(uint16(inj.ASN), 60000)
	if err := l.Announce(inj, probe, benign); err != nil {
		return nil, err
	}
	defer l.Withdraw(inj, probe)
	var out []RTBHTarget
	for _, asn := range l.W.TransitASes() {
		bh, ok := l.W.Catalogs[asn].BlackholeCommunity()
		if !ok {
			continue
		}
		hops := -1
		l.W.Net.Router(asn).EachAdjIn(func(p netip.Prefix, _ topo.ASN, rt *policy.Route) {
			if p != probe || !rt.Communities.Has(benign) {
				return
			}
			if hops < 0 || rt.ASPath.HopLength() < hops {
				hops = rt.ASPath.HopLength()
			}
		})
		if hops < 0 {
			continue
		}
		out = append(out, RTBHTarget{AS: asn, Community: bh, HopsAway: hops})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].HopsAway != out[j].HopsAway {
			return out[i].HopsAway < out[j].HopsAway
		}
		return out[i].AS < out[j].AS
	})
	return out, nil
}
