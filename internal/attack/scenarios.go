package attack

import (
	"fmt"
	"net/netip"

	"bgpworms/internal/atlas"
	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/scenario"
	"bgpworms/internal/topo"
)

// Difficulty, Result, and the grading constants moved to the scenario
// registry (internal/scenario); the aliases keep the lab API stable.
type (
	// Difficulty grades a scenario as Table 3 does.
	Difficulty = scenario.Difficulty
	// Result is one Table 3 row with evidence.
	Result = scenario.Result
)

// Difficulty levels.
const (
	Easy   = scenario.Easy
	Medium = scenario.Medium
	Hard   = scenario.Hard
)

// PropagationReport is the §7.2 benign-community propagation check.
type PropagationReport struct {
	Injector string
	// ForwardingTransits carried the benign community intact on their
	// best route.
	ForwardingTransits int
	// TotalTransits saw the probe prefix at all.
	TotalTransits int
	// ForwardingUpstreams counts direct upstreams that propagated.
	ForwardingUpstreams int
}

// PropagationCheck announces a probe tagged with a benign community
// ("low-order bits that we have not observed in the wild", §7.2) and
// counts propagating transit ASes.
func (l *Lab) PropagationCheck(inj *Injector) (*PropagationReport, error) {
	probe := inj.OwnPrefix
	benign := bgp.C(uint16(inj.ASN), 65432&0xFFFF)
	if err := l.Announce(inj, probe, benign); err != nil {
		return nil, err
	}
	defer l.Withdraw(inj, probe)
	rep := &PropagationReport{Injector: inj.Name}
	for _, asn := range l.W.TransitASes() {
		rt, ok := l.W.Net.Router(asn).BestRoute(probe)
		if !ok {
			continue
		}
		rep.TotalTransits++
		if rt.Communities.Has(benign) {
			rep.ForwardingTransits++
		}
	}
	for _, up := range inj.Upstreams {
		r := l.W.Net.Router(up)
		if r == nil {
			continue
		}
		// Check what the upstream advertises onward: any neighbor view
		// carrying the community counts.
		for _, nb := range r.Neighbors() {
			if nb == inj.ASN {
				continue
			}
			if adv, ok := r.Advertised(nb, probe); ok && adv.Communities.Has(benign) {
				rep.ForwardingUpstreams++
				break
			}
		}
	}
	return rep, nil
}

// RunRTBH executes §7.3. Without hijack: announce an own /24 tagged with
// a remote provider's blackhole community and verify the data plane dies
// at the target. With hijack: announce a victim's prefix the same way
// from the research network, which requires an IRR update to pass origin
// validation.
func (l *Lab) RunRTBH(hijack bool) (*Result, error) {
	res := &Result{Scenario: "Blackholing", Hijack: hijack, Difficulty: Easy}
	inj := l.Research

	targets, err := l.FindRTBHTargets(inj, inj.OwnPrefix)
	if err != nil {
		return nil, err
	}
	// Pick a target at least two AS hops away (not a direct upstream),
	// as §7.3 does.
	var target RTBHTarget
	for _, t := range targets {
		if t.HopsAway >= 2 {
			target = t
			break
		}
	}
	if target.AS == 0 {
		return nil, fmt.Errorf("attack: no RTBH target beyond one hop")
	}
	res.Notef("target AS%d offers RTBH via %s, %d hops from injector", target.AS, target.Community, target.HopsAway)

	var victim netip.Prefix
	if hijack {
		// Hijack a stub that is not a customer of our upstreams: against
		// a directly-attached victim the upstream prefers the equal-length
		// customer route and the hijack only poisons elsewhere.
		stub := l.pickRemoteVictim()
		if stub == 0 {
			return nil, fmt.Errorf("attack: no IPv4-originating stub to hijack")
		}
		victim = l.W.Origins[stub][0]
		res.Insights = append(res.Insights,
			"origin validation at the first upstream rejected the hijack until the IRR was updated",
			"hijack+blackhole denies service universally, not just near the attacker")
		// First attempt without IRR: the validating upstream rejects it.
		if err := l.Announce(inj, victim, target.Community); err != nil {
			return nil, err
		}
		if _, ok := l.W.Net.Router(inj.Upstreams[0]).BestRoute(victim.Masked()); ok {
			rt, _ := l.W.Net.Router(inj.Upstreams[0]).BestRoute(victim.Masked())
			if rt.NextHopAS == inj.ASN {
				res.Notef("WARNING: upstream accepted hijack without IRR")
			}
		}
		l.Withdraw(inj, victim)
		l.UpdateIRR(inj, victim)
	} else {
		victim = researchPrefix
		res.Insights = append(res.Insights,
			"accepted independent of AS relationships",
			"preferred even though the attacker's AS path is longer")
	}

	dst := netx.NthAddr(victim, 9)

	// Baseline reachability (without the blackhole tag).
	if err := l.Announce(inj, victim); err != nil {
		return nil, err
	}
	before := l.Atlas.PingAll(dst)
	res.Notef("baseline: %d/%d vantage points reach %s", before.ResponsiveCount(), len(l.Atlas.VPs()), dst)

	// Attack: re-announce tagged.
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	if err := l.Announce(inj, victim, target.Community); err != nil {
		return nil, err
	}

	// Looking-glass validation at the target: next-hop must be the null
	// interface (Blackhole flag).
	lg := l.W.Net.LookingGlass(target.AS)
	rt, ok := lg.Route(victim)
	if !ok {
		res.Notef("target looking glass has no route")
	} else {
		res.Notef("target LG: %s", rt)
		// Success: the target null-routes the prefix on the attacker's
		// announcement ("the next-hop address changed to a null interface
		// address", §7.3).
		if rt.Blackhole && rt.ASPath.Contains(uint32(inj.ASN)) {
			res.Success = true
		}
	}
	after := l.Atlas.PingAll(dst)
	lost := len(atlas.LostVPs(before, after))
	res.Notef("after attack: %d/%d vantage points reach %s (%d lost)",
		after.ResponsiveCount(), len(l.Atlas.VPs()), dst, lost)
	if lost == 0 && res.Success {
		res.Notef("note: no sampled vantage point routes via the target")
	}

	// Cleanup.
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	return res, nil
}

// pickRemoteVictim returns a stub with an IPv4 allocation that is not
// directly attached to either research upstream, falling back to any
// IPv4-originating stub. Returns 0 only when no stub originates IPv4 at
// all — callers must treat that as "attack not launchable".
func (l *Lab) pickRemoteVictim() topo.ASN {
	ups := map[topo.ASN]bool{}
	for _, u := range l.Research.Upstreams {
		ups[u] = true
	}
	fallback := topo.ASN(0)
	for _, s := range l.W.StubASes() {
		if len(l.W.Origins[s]) == 0 || !l.W.Origins[s][0].Addr().Is4() {
			continue
		}
		if fallback == 0 {
			fallback = s
		}
		attached := false
		for _, p := range l.W.Graph.Providers(s) {
			if ups[p] {
				attached = true
			}
		}
		if !attached {
			return s
		}
	}
	return fallback
}

// RunSteeringLocalPref executes §7.4's local-preference steering: tag the
// target's "customer fallback" community and verify the target installs
// the route with the lowered preference. Relationship gating makes the
// multi-hop variant hard.
func (l *Lab) RunSteeringLocalPref(hijack bool) (*Result, error) {
	res := &Result{Scenario: "Traffic Steering (local pref)", Hijack: hijack, Difficulty: Hard}
	inj := l.Research
	res.Insights = append(res.Insights,
		"providers only act on communities set by their customers",
		"the flattening of the Internet makes multi-hop steering hard to launch")
	if hijack {
		res.Insights = append(res.Insights, "IRR origin validation is typically checked but can be circumvented")
	}

	// Find a target: a provider of one of our upstreams offering a
	// local-pref service, where the upstream is the target's customer —
	// the gate §7.4 identifies.
	var target topo.ASN
	var via topo.ASN
	var svc policy.Service
	for _, up := range inj.Upstreams {
		for _, prov := range l.W.Graph.Providers(up) {
			for _, s := range l.W.Catalogs[prov].Services {
				if s.Kind == policy.SvcLocalPref && s.Param < policy.DefaultLocalPref {
					target, via, svc = prov, up, s
					break
				}
			}
			if target != 0 {
				break
			}
		}
		if target != 0 {
			break
		}
	}
	if target == 0 {
		res.Notef("no local-pref target reachable through a customer chain; attack not launchable")
		return res, nil
	}
	res.Notef("target AS%d offers %s=%d via customer AS%d", target, svc.Community, svc.Param, via)

	victim := researchPrefix
	if hijack {
		stub := l.W.StubASes()[1]
		victim = l.W.Origins[stub][0]
		l.UpdateIRR(inj, victim)
	}

	if err := l.Announce(inj, victim, svc.Community); err != nil {
		return nil, err
	}
	rt, ok := l.W.Net.Router(target).BestRoute(victim)
	if ok {
		res.Notef("target LG: %s", rt)
		// Success: either the tagged path carries the lowered pref, or
		// the target moved its best route off the tagged path entirely
		// (the fallback worked).
		if rt.LocalPref == svc.Param {
			res.Success = true
			res.Notef("requested 'customer fallback' preference %d is installed", svc.Param)
		} else if !rt.ASPath.Contains(uint32(via)) {
			res.Success = true
			res.Notef("best path moved away from AS%d after depreferencing", via)
		}
	} else {
		res.Notef("target has no route for %s", victim)
	}
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	return res, nil
}

// RunSteeringPrepend executes §7.4's prepending variant: tag the target's
// prepend community and verify paths through the target lengthen, moving
// best paths elsewhere (Figure 2/8a).
func (l *Lab) RunSteeringPrepend(hijack bool) (*Result, error) {
	res := &Result{Scenario: "Traffic Steering (prepending)", Hijack: hijack, Difficulty: Hard}
	inj := l.Research
	res.Insights = append(res.Insights,
		"providers only act on communities set by their customers",
		"prepending has low evaluation order, so the attack may not take effect")
	if hijack {
		res.Insights = append(res.Insights, "IRR origin validation is typically checked but can be circumvented")
	}

	target, via, svc := l.findPrependTarget(2)
	if target == 0 {
		res.Notef("no prepend target reachable through a customer chain; attack not launchable")
		return res, nil
	}
	res.Notef("target AS%d prepends x%d on %s via customer AS%d", target, svc.Param, svc.Community, via)

	victim := researchPrefix
	if hijack {
		stub := l.W.StubASes()[2]
		victim = l.W.Origins[stub][0]
		l.UpdateIRR(inj, victim)
	}
	if err := l.Announce(inj, victim, svc.Community); err != nil {
		return nil, err
	}
	// Validate at the target's neighbors: the exported path must contain
	// the target's ASN svc.Param+1 times.
	tr := l.W.Net.Router(target)
	for _, nb := range tr.Neighbors() {
		adv, ok := tr.Advertised(nb, victim)
		if !ok {
			continue
		}
		count := 0
		for _, a := range adv.ASPath.Sequence() {
			if a == uint32(target) {
				count++
			}
		}
		if count == int(svc.Param)+1 {
			res.Success = true
			res.Notef("AS%d exports to AS%d with path [%s] (%d copies)", target, nb, adv.ASPath, count)
			break
		}
	}
	if !res.Success {
		res.Notef("no prepended export observed at the target")
	}
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	return res, nil
}

// RunRouteManipulation executes §7.5: conflicting announce/suppress
// communities at an IXP route server, exploiting the published evaluation
// order to withhold a route from a member (Figure 9).
func (l *Lab) RunRouteManipulation(hijack bool) (*Result, error) {
	res := &Result{Scenario: "Route Manipulation", Hijack: hijack, Difficulty: Medium}
	res.Insights = append(res.Insights,
		"requires knowing the route server's community evaluation order (published here)")
	if hijack {
		res.Insights = append(res.Insights, "route servers rarely enforce origin validation; IRR checks can be circumvented")
	}
	if len(l.W.RouteServers) == 0 {
		return nil, fmt.Errorf("attack: no route server in lab")
	}
	rs := l.W.RouteServers[0]
	inj := l.Peering

	// Attackee: another member of the same route server.
	var attackee topo.ASN
	for _, m := range rs.Members() {
		if m != inj.ASN {
			attackee = m
			break
		}
	}
	if attackee == 0 {
		return nil, fmt.Errorf("attack: route server has no other members")
	}
	res.Notef("route server AS%d (%s), attackee member AS%d", rs.ASN(), rs.Order(), attackee)

	victim := peeringPrefix
	if hijack {
		// A member hijacking another member's prefix at the RS: modelled
		// from the research injector? PEERING AUP forbids it; emulate by
		// using a prefix we control as the "hijacked" stand-in and note
		// the constraint.
		res.Notef("PEERING AUP forbids true hijacks; using controlled prefix as stand-in (§7.1)")
	}

	// The attackee may also learn the prefix over ordinary transit, so
	// validation inspects the route server's per-peer view — the PEERING
	// facility §7.5 relies on ("a public per-peer view of the accepted
	// prefixes and communities").
	rsAdvertises := func() bool {
		_, ok := rs.Router().Advertised(attackee, victim)
		return ok
	}

	// Step 1: selective announce to the attackee — route appears.
	if err := l.Announce(inj, victim, rs.AnnounceToCommunity(attackee)); err != nil {
		return nil, err
	}
	if !rsAdvertises() {
		res.Notef("route server never redistributed the selectively announced route")
		l.Withdraw(inj, victim)
		return res, nil
	}
	res.Notef("route server advertises %s to attackee AS%d", victim, attackee)

	// Step 2: add the conflicting suppress community.
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	if err := l.Announce(inj, victim, rs.AnnounceToCommunity(attackee), rs.SuppressToCommunity(attackee)); err != nil {
		return nil, err
	}
	if !rsAdvertises() {
		res.Success = true
		res.Notef("conflicting communities: suppress evaluated first, attackee lost the route")
	} else {
		res.Notef("attackee still has the route; evaluation order is announce-first")
	}
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	return res, nil
}

// Table3 runs the full scenario × hijack matrix.
func (l *Lab) Table3() ([]*Result, error) {
	var out []*Result
	runs := []func() (*Result, error){
		func() (*Result, error) { return l.RunRTBH(false) },
		func() (*Result, error) { return l.RunRTBH(true) },
		func() (*Result, error) { return l.RunSteeringLocalPref(false) },
		func() (*Result, error) { return l.RunSteeringLocalPref(true) },
		func() (*Result, error) { return l.RunSteeringPrepend(false) },
		func() (*Result, error) { return l.RunSteeringPrepend(true) },
		func() (*Result, error) { return l.RunRouteManipulation(false) },
		func() (*Result, error) { return l.RunRouteManipulation(true) },
	}
	for _, run := range runs {
		r, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
