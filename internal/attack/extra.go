package attack

import (
	"fmt"
	"net/netip"
	"sort"

	"bgpworms/internal/atlas"
	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/topo"
)

// This file holds the scenarios that extend the paper's Table 3: the
// propagation-distance probe (§4.4 measured passively, here active), the
// blackhole-community squat (§7.6's decoy population), selective prepend
// steering (§7.4 taken per-flow), and community-amplified route leaks
// (the §5 taxonomy crossed with the classic leak).

// CommunitySet resolves a named ground-truth registry slice: "verified",
// "likely", or "all" (§7.6's candidate lists).
func (l *Lab) CommunitySet(name string) ([]bgp.Community, error) {
	switch name {
	case "", "verified":
		return append([]bgp.Community(nil), l.W.Registry.Verified...), nil
	case "likely":
		return append([]bgp.Community(nil), l.W.Registry.Likely...), nil
	case "all":
		return l.W.Registry.All(), nil
	default:
		return nil, fmt.Errorf("attack: unknown community set %q (want verified|likely|all)", name)
	}
}

// RunPropagationDistance actively measures how far a benign community
// travels: announce a tagged probe from the research network and record,
// per transit AS holding the probe, whether the tag survived on the best
// path and at what AS-hop distance — the active analogue of the Figure
// 5a/5b traveled-distance ECDFs.
func (l *Lab) RunPropagationDistance() (*Result, error) {
	res := &Result{Scenario: "Propagation Distance", Difficulty: Easy}
	res.Insights = append(res.Insights,
		"communities cross ASes that have no use for them, so a trigger can arrive from far away",
		"strip-all and strip-foreign transits bound the attack radius the same way they bound measurement visibility")
	inj := l.Research
	probe := inj.OwnPrefix
	// A low-order value not used by any generated policy (§7.2 picks
	// "low-order bits that we have not observed in the wild").
	benign := bgp.C(uint16(inj.ASN), 48)
	if err := l.Announce(inj, probe, benign); err != nil {
		return nil, err
	}
	defer l.Withdraw(inj, probe)

	carried := map[int]int{}
	sawRoute, strippedAt, maxCarry := 0, 0, 0
	for _, asn := range l.W.TransitASes() {
		rt, ok := l.W.Net.Router(asn).BestRoute(probe)
		if !ok {
			continue
		}
		sawRoute++
		hops := rt.ASPath.HopLength()
		if rt.Communities.Has(benign) {
			carried[hops]++
			if hops > maxCarry {
				maxCarry = hops
			}
		} else {
			strippedAt++
		}
	}
	res.Notef("probe visible at %d transit ASes; tag stripped on %d of their best paths", sawRoute, strippedAt)
	dists := make([]int, 0, len(carried))
	for d := range carried {
		dists = append(dists, d)
	}
	sort.Ints(dists)
	for _, d := range dists {
		res.Notef("distance %d AS hops: tag intact on %d best paths", d, carried[d])
	}
	// Success: the community crossed at least one intermediate AS, the
	// necessary condition for every remote-trigger attack (§5.4).
	res.Success = maxCarry >= 2
	return res, nil
}

// RunBlackholeSquat announces the attack platform's own prefix tagged
// with a decoy blackhole community — value 666 on an AS that offers no
// RTBH service (§7.6's "likely" population). The squat must be inert:
// no vantage point loses reachability and the decoy owner keeps an
// ordinary best route, showing value-pattern inference over-counts and
// only active verification separates triggers from decoys.
func (l *Lab) RunBlackholeSquat() (*Result, error) {
	res := &Result{Scenario: "Blackhole Squatting", Difficulty: Easy}
	res.Insights = append(res.Insights,
		"blackhole-looking community values on non-offering ASes are inert",
		"inference from value patterns over-counts; the §7.6 active sweep separates triggers from decoys")
	if len(l.W.Registry.Likely) == 0 {
		res.Notef("no decoy blackhole community in this topology; squat not demonstrable")
		return res, nil
	}
	decoy := l.W.Registry.Likely[0]
	inj := l.Peering
	probe := inj.OwnPrefix
	dst := netx.NthAddr(probe, 33)

	if err := l.Announce(inj, probe); err != nil {
		return nil, err
	}
	before := l.Atlas.PingAll(dst)
	if err := l.Withdraw(inj, probe); err != nil {
		return nil, err
	}
	if err := l.Announce(inj, probe, decoy); err != nil {
		return nil, err
	}
	after := l.Atlas.PingAll(dst)
	lost := atlas.LostVPs(before, after)
	res.Notef("squatted %s (AS%d documents no RTBH): %d/%d VPs lost",
		decoy, decoy.ASN(), len(lost), len(l.Atlas.VPs()))

	inert := len(lost) == 0
	if r := l.W.Net.Router(topo.ASN(decoy.ASN())); r != nil {
		if rt, ok := r.BestRoute(probe); ok {
			res.Notef("decoy owner LG: %s", rt)
			if rt.Blackhole {
				inert = false
			}
		}
	}
	res.Success = inert
	if err := l.Withdraw(inj, probe); err != nil {
		return nil, err
	}
	return res, nil
}

// findPrependTarget locates a provider of one of the research upstreams
// that offers a prepend service of at least minPrepend copies reachable
// through a customer chain — the §7.4 gate shared by both prepend
// steering variants.
func (l *Lab) findPrependTarget(minPrepend uint32) (target, via topo.ASN, svc policy.Service) {
	for _, up := range l.Research.Upstreams {
		for _, prov := range l.W.Graph.Providers(up) {
			for _, s := range l.W.Catalogs[prov].Services {
				if s.Kind == policy.SvcPrepend && s.Param >= minPrepend {
					return prov, up, s
				}
			}
		}
	}
	return 0, 0, policy.Service{}
}

// ensurePrependTarget returns a customer-chain prepend target of at
// least minPrepend copies, configuring one at the forwarding upstream's
// first provider when the generated topology offers none — the same
// target-provisioning role ensureRTBHProvider plays for §7.3.
func (l *Lab) ensurePrependTarget(minPrepend uint32) (target, via topo.ASN, svc policy.Service) {
	if t, v, s := l.findPrependTarget(minPrepend); t != 0 {
		return t, v, s
	}
	fwd := l.Research.Upstreams[0]
	provs := l.W.Graph.Providers(fwd)
	if len(provs) == 0 {
		return 0, 0, policy.Service{}
	}
	p := provs[0]
	val := uint16(100 + minPrepend)
	for {
		if _, taken := l.W.Catalogs[p].Lookup(bgp.C(uint16(p), val)); !taken {
			break
		}
		val++
	}
	svc = policy.Service{
		Community: bgp.C(uint16(p), val), Kind: policy.SvcPrepend,
		Param: minPrepend, CustomerOnly: true,
	}
	l.mutableCatalog(p).Add(svc)
	return p, fwd, svc
}

// RunSelectivePrepend is §7.4's prepending attack validated per-flow:
// the tag must move traffic off the target AS only for networks that
// were routing through it, while every bystander keeps its path and
// nobody loses reachability. The Table 3 steering row shows the path
// lengthens at the target; this scenario shows the steering is surgical.
func (l *Lab) RunSelectivePrepend(minPrepend int) (*Result, error) {
	res := &Result{Scenario: "Traffic Steering (selective prepend)", Difficulty: Hard}
	res.Insights = append(res.Insights,
		"one community moves only the flows crossing the target AS; the rest of the Internet keeps its paths",
		"providers only act on communities set by their customers")
	if minPrepend < 1 {
		minPrepend = 1
	}
	target, via, svc := l.ensurePrependTarget(uint32(minPrepend))
	if target == 0 {
		res.Notef("no prepend target (>=%d copies) reachable through a customer chain; attack not launchable", minPrepend)
		return res, nil
	}
	res.Notef("target AS%d prepends x%d on %s via customer AS%d", target, svc.Param, svc.Community, via)

	inj := l.Research
	victim := researchPrefix
	if err := l.Announce(inj, victim); err != nil {
		return nil, err
	}
	viaTarget := map[topo.ASN]bool{}
	reachBefore := 0
	for _, t := range l.W.TransitASes() {
		if rt, ok := l.W.Net.Router(t).BestRoute(victim); ok {
			reachBefore++
			if rt.ASPath.Contains(uint32(target)) {
				viaTarget[t] = true
			}
		}
	}
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	if err := l.Announce(inj, victim, svc.Community); err != nil {
		return nil, err
	}
	moved, bystandersKept, dragged, reachAfter := 0, 0, 0, 0
	for _, t := range l.W.TransitASes() {
		rt, ok := l.W.Net.Router(t).BestRoute(victim)
		if !ok {
			continue
		}
		reachAfter++
		onTarget := rt.ASPath.Contains(uint32(target))
		switch {
		case viaTarget[t] && !onTarget:
			moved++
		case !viaTarget[t] && !onTarget:
			bystandersKept++
		case !viaTarget[t] && onTarget:
			dragged++
		}
	}
	res.Notef("before: %d/%d transits routed via AS%d; after tagging %d moved off, %d bystanders stayed target-free, %d dragged on",
		len(viaTarget), reachBefore, target, moved, bystandersKept, dragged)
	// Surgical means: somebody moved off the target, nobody was dragged
	// onto it, and nobody lost reachability.
	res.Success = moved >= 1 && dragged == 0 && reachAfter == reachBefore
	if moved == 0 {
		res.Notef("no transit left AS%d: x%d prepending found no shorter alternative path", target, svc.Param)
	}
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	return res, nil
}

// findLeakAmplifier announces the leak tagged with a benign marker and
// searches (in sorted transit order) for an AS that received the marker
// in its Adj-RIB-In but still prefers the legitimate route. That AS is
// where a raise community changes the outcome; an AS already preferring
// the leak (every first-hop provider does, customer preference sees to
// that) amplifies nothing. Mirrors FindRTBHTargets' probe-then-select
// shape.
func (l *Lab) findLeakAmplifier(inj *Injector, victim netip.Prefix) (topo.ASN, error) {
	marker := bgp.C(uint16(inj.ASN), 61)
	if err := l.Announce(inj, victim, marker); err != nil {
		return 0, err
	}
	defer l.Withdraw(inj, victim)
	for _, asn := range l.W.TransitASes() {
		r := l.W.Net.Router(asn)
		sawMarker := false
		r.EachAdjIn(func(p netip.Prefix, from topo.ASN, rt *policy.Route) {
			if p == victim && rt.Communities.Has(marker) {
				sawMarker = true
			}
		})
		if !sawMarker {
			continue
		}
		if rt, ok := r.BestRoute(victim); ok && !rt.ASPath.Contains(uint32(inj.ASN)) {
			return asn, nil
		}
	}
	return 0, nil
}

// armLeakAmplifier gives amp a local-pref-raise service with Param above
// LocalPrefCustomer and no customer-only gate — the misconfiguration
// that makes this attack work. §7.4's steering attacks are hard exactly
// because providers gate action communities to customer sessions; an AS
// whose raise community fires on any session amplifies leaks arriving
// from anywhere. An existing ungated raise service is reused.
func (l *Lab) armLeakAmplifier(amp topo.ASN) (bgp.Community, uint32) {
	for _, s := range l.W.Catalogs[amp].Services {
		if s.Kind == policy.SvcLocalPref && s.Param > router.LocalPrefCustomer && !s.CustomerOnly {
			return s.Community, s.Param
		}
	}
	pref := router.LocalPrefCustomer + 20
	val := uint16(pref)
	for {
		if _, taken := l.W.Catalogs[amp].Lookup(bgp.C(uint16(amp), val)); !taken {
			break
		}
		val++
	}
	raise := bgp.C(uint16(amp), val)
	l.mutableCatalog(amp).Add(policy.Service{
		Community: raise, Kind: policy.SvcLocalPref, Param: pref,
	})
	return raise, pref
}

// RunRouteLeakAmplification models a community-amplified route leak: the
// research network originates a remote stub's prefix (the leak, IRR
// pre-updated as §7.3 showed is feasible), measures how many transit
// ASes prefer the leaked path, then re-announces tagged with the
// amplifier's local-pref-raise community. Plain, the leak loses the
// decision process at the amplifier; amplified, the raise community
// makes it best there and across its cone.
func (l *Lab) RunRouteLeakAmplification() (*Result, error) {
	res := &Result{Scenario: "Route Leak Amplification", Hijack: true, Difficulty: Medium}
	res.Insights = append(res.Insights,
		"a leaked route on its own loses the decision process where legitimate paths are shorter or better-preferred",
		"a raise community without §7.4's customer-session gate flips the amplifier and drags its whole cone onto the leak")
	inj := l.Research

	stub := l.pickRemoteVictim()
	if stub == 0 {
		res.Notef("no IPv4-originating stub to leak; attack not launchable")
		return res, nil
	}
	victim := l.W.Origins[stub][0]
	l.UpdateIRR(inj, victim)
	res.Notef("leaking %s (origin AS%d) from AS%d", victim, stub, inj.ASN)

	amp, err := l.findLeakAmplifier(inj, victim)
	if err != nil {
		return nil, err
	}
	if amp == 0 {
		res.Notef("every community-reachable transit already prefers the leak; nothing left to amplify")
		return res, nil
	}
	raise, pref := l.armLeakAmplifier(amp)
	res.Notef("amplifier AS%d raises local-pref to %d on %s (ungated: fires on any session)", amp, pref, raise)

	if err := l.Announce(inj, victim); err != nil {
		return nil, err
	}
	radiusPlain := l.countTransitsVia(inj.ASN, victim)
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	if err := l.Announce(inj, victim, raise); err != nil {
		return nil, err
	}
	radiusAmped := l.countTransitsVia(inj.ASN, victim)
	ampFlipped := false
	if rt, ok := l.W.Net.Router(amp).BestRoute(victim); ok {
		ampFlipped = rt.ASPath.Contains(uint32(inj.ASN))
		res.Notef("amplifier LG: %s", rt)
	}
	res.Notef("leak radius: %d transit ASes preferred the plain leak, %d once amplified (of %d)",
		radiusPlain, radiusAmped, len(l.W.TransitASes()))
	res.Success = ampFlipped && radiusAmped > radiusPlain
	if err := l.Withdraw(inj, victim); err != nil {
		return nil, err
	}
	return res, nil
}

// countTransitsVia counts transit ASes whose best route for p crosses
// asn — the leak's blast radius.
func (l *Lab) countTransitsVia(asn topo.ASN, p netip.Prefix) int {
	n := 0
	for _, t := range l.W.TransitASes() {
		if rt, ok := l.W.Net.Router(t).BestRoute(p); ok && rt.ASPath.Contains(uint32(asn)) {
			n++
		}
	}
	return n
}
