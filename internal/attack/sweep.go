package attack

import (
	"sort"

	"bgpworms/internal/atlas"
	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/stats"
	"bgpworms/internal/topo"
)

// SweepEntry is the outcome for one candidate blackhole community (§7.6).
type SweepEntry struct {
	Community bgp.Community
	// LostVPs were responsive before and unresponsive after tagging.
	LostVPs []int
	// Verified reflects ground truth (the community is a real RTBH
	// trigger), used to score the inference.
	Verified bool
	// TargetOnPath counts lost VPs whose traceroute contains the
	// community's target AS (the §7.6 hop analysis).
	TargetOnPath int
	// HopDistances are lower bounds on blackhole-community travel,
	// per affected VP (position of the target AS in the trace).
	HopDistances []int
}

// Induced reports whether the community blackholed at least one VP.
func (e SweepEntry) Induced() bool { return len(e.LostVPs) > 0 }

// SweepReport aggregates the automated experiment.
type SweepReport struct {
	Entries []SweepEntry
	// TotalVPs is the vantage-point population size.
	TotalVPs int
	// Stable reports whether the verification re-run matched exactly
	// ("the results from this second round of probing exactly matched
	// the first", §7.6).
	Stable bool
}

// InducingCommunities returns entries that blackholed >= 1 VP.
func (r *SweepReport) InducingCommunities() []SweepEntry {
	var out []SweepEntry
	for _, e := range r.Entries {
		if e.Induced() {
			out = append(out, e)
		}
	}
	return out
}

// AffectedVPs returns the union of lost VPs across entries.
func (r *SweepReport) AffectedVPs() []int {
	set := map[int]bool{}
	for _, e := range r.Entries {
		for _, id := range e.LostVPs {
			set[id] = true
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// PrecisionRecall scores blackhole inference against ground truth:
// inferred = induced entries; relevant = verified entries.
func (r *SweepReport) PrecisionRecall() (precision, recall float64) {
	tp, fp, fn := 0, 0, 0
	for _, e := range r.Entries {
		switch {
		case e.Induced() && e.Verified:
			tp++
		case e.Induced() && !e.Verified:
			fp++
		case !e.Induced() && e.Verified:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// BlackholeSweep reproduces the §7.6 protocol for every community in the
// candidate list: (1) advertise the test prefix plain, (2) probe from all
// VPs, (3) advertise tagged with the candidate, (4) re-probe and diff,
// then traceroute the affected VPs and locate the target AS. The whole
// sweep is run twice to confirm stability.
func (l *Lab) BlackholeSweep(candidates []bgp.Community) (*SweepReport, error) {
	first, err := l.sweepOnce(candidates)
	if err != nil {
		return nil, err
	}
	second, err := l.sweepOnce(candidates)
	if err != nil {
		return nil, err
	}
	first.Stable = sweepsEqual(first, second)
	return first, nil
}

func (l *Lab) sweepOnce(candidates []bgp.Community) (*SweepReport, error) {
	inj := l.Peering
	probe := sweepPrefix
	dst := netx.NthAddr(probe, 21)
	rep := &SweepReport{TotalVPs: len(l.Atlas.VPs())}

	for _, c := range candidates {
		// Step 1: plain announcement.
		if err := l.Announce(inj, probe); err != nil {
			return nil, err
		}
		before := l.Atlas.PingAll(dst)
		// Step 3: tagged announcement.
		if err := l.Withdraw(inj, probe); err != nil {
			return nil, err
		}
		if err := l.Announce(inj, probe, c); err != nil {
			return nil, err
		}
		after := l.Atlas.PingAll(dst)
		entry := SweepEntry{
			Community: c,
			LostVPs:   atlas.LostVPs(before, after),
			Verified:  l.isVerified(c),
		}
		// Hop analysis on affected VPs: traceroute and locate the
		// community's target AS.
		if entry.Induced() {
			for _, id := range entry.LostVPs {
				vp, ok := l.Atlas.VP(id)
				if !ok {
					continue
				}
				tr := l.W.Net.Forward(vp.AS, dst)
				if pos := indexOf(tr.Hops, topo.ASN(c.ASN())); pos >= 0 {
					entry.TargetOnPath++
					entry.HopDistances = append(entry.HopDistances, len(tr.Hops)-pos)
				}
				_ = tr
			}
		}
		rep.Entries = append(rep.Entries, entry)
		if err := l.Withdraw(inj, probe); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func (l *Lab) isVerified(c bgp.Community) bool {
	for _, v := range l.W.Registry.Verified {
		if v == c {
			return true
		}
	}
	return false
}

func indexOf(hops []topo.ASN, asn topo.ASN) int {
	for i, h := range hops {
		if h == asn {
			return i
		}
	}
	return -1
}

func sweepsEqual(a, b *SweepReport) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.Community != eb.Community || len(ea.LostVPs) != len(eb.LostVPs) {
			return false
		}
		for j := range ea.LostVPs {
			if ea.LostVPs[j] != eb.LostVPs[j] {
				return false
			}
		}
	}
	return true
}

// RenderSweep summarizes the §7.6 numbers.
func RenderSweep(r *SweepReport) string {
	t := stats.NewTable("Metric", "Value")
	ind := r.InducingCommunities()
	t.Row("candidate communities", len(r.Entries))
	t.Row("inducing >=1 VP loss", len(ind))
	t.Row("share inducing", stats.Pct(len(ind), len(r.Entries)))
	aff := r.AffectedVPs()
	t.Row("affected VPs", len(aff))
	t.Row("share of VPs", stats.Pct(len(aff), r.TotalVPs))
	p, rec := r.PrecisionRecall()
	t.Row("precision vs ground truth", p)
	t.Row("recall vs ground truth", rec)
	t.Row("re-run stable", r.Stable)
	return t.String()
}

// RenderTable3 renders scenario results in the paper's Table 3 layout.
func RenderTable3(results []*Result) string {
	t := stats.NewTable("Scenario", "Hijack", "Success", "Difficulty", "Insights")
	for _, r := range results {
		hij := "no"
		if r.Hijack {
			hij = "yes"
		}
		insight := ""
		if len(r.Insights) > 0 {
			insight = r.Insights[0]
		}
		t.Row(r.Scenario, hij, r.Success, r.Difficulty.String(), insight)
	}
	return t.String()
}

// RenderPropagation summarizes §7.2.
func RenderPropagation(reps []*PropagationReport) string {
	t := stats.NewTable("Injector", "ForwardingTransits", "TotalTransits", "Share", "ForwardingUpstreams")
	for _, r := range reps {
		t.Row(r.Injector, r.ForwardingTransits, r.TotalTransits,
			stats.Pct(r.ForwardingTransits, r.TotalTransits), r.ForwardingUpstreams)
	}
	return t.String()
}
