package attack

import (
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/gen"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
)

func newLab(t *testing.T) *Lab {
	t.Helper()
	l, err := NewLab(gen.Tiny(), 12)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLabSetup(t *testing.T) {
	l := newLab(t)
	if l.Research == nil || l.Peering == nil {
		t.Fatal("injectors missing")
	}
	if len(l.Research.Upstreams) != 2 {
		t.Fatalf("research upstreams=%v", l.Research.Upstreams)
	}
	// The first research upstream forwards communities, per §7.2.
	mode := l.W.Net.Router(l.Research.Upstreams[0]).Config().Propagation
	if mode != policy.PropForwardAll {
		t.Fatalf("first upstream mode=%v", mode)
	}
	if len(l.Peering.Upstreams) < 2 {
		t.Fatalf("peering upstreams=%v", l.Peering.Upstreams)
	}
	if !l.Peering.HijackForbidden || l.Research.HijackForbidden {
		t.Fatal("AUP flags wrong")
	}
	if len(l.Atlas.VPs()) != 12 {
		t.Fatalf("vps=%d", len(l.Atlas.VPs()))
	}
}

func TestAUPForbidsPeeringHijack(t *testing.T) {
	l := newLab(t)
	victim := l.W.Origins[l.W.StubASes()[0]][0]
	if err := l.Announce(l.Peering, victim); err == nil {
		t.Fatal("PEERING hijack must be rejected by AUP")
	}
	// Own prefix is fine.
	if err := l.Announce(l.Peering, netx.MustPrefix("198.18.64.0/24")); err != nil {
		t.Fatal(err)
	}
	l.Withdraw(l.Peering, netx.MustPrefix("198.18.64.0/24"))
}

func TestPropagationCheck(t *testing.T) {
	l := newLab(t)
	repR, err := l.PropagationCheck(l.Research)
	if err != nil {
		t.Fatal(err)
	}
	if repR.TotalTransits == 0 {
		t.Fatal("probe reached no transit AS")
	}
	if repR.ForwardingTransits == 0 {
		t.Fatal("no transit forwarded the benign community")
	}
	repP, err := l.PropagationCheck(l.Peering)
	if err != nil {
		t.Fatal(err)
	}
	// The multi-PoP platform reaches at least as many forwarding
	// transits as the single-homed research net (§7.2's contrast).
	if repP.ForwardingTransits < repR.ForwardingTransits {
		t.Fatalf("peering=%d < research=%d forwarding transits",
			repP.ForwardingTransits, repR.ForwardingTransits)
	}
	if RenderPropagation([]*PropagationReport{repR, repP}) == "" {
		t.Fatal("render empty")
	}
}

func TestFindRTBHTargets(t *testing.T) {
	l := newLab(t)
	targets, err := l.FindRTBHTargets(l.Research, netx.MustPrefix("198.18.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no RTBH targets")
	}
	for i := 1; i < len(targets); i++ {
		if targets[i].HopsAway < targets[i-1].HopsAway {
			t.Fatal("targets not sorted by distance")
		}
	}
	for _, tg := range targets {
		if !tg.Community.IsBlackhole() && tg.Community.Value() != 999 {
			t.Fatalf("target community %s not blackhole-like", tg.Community)
		}
	}
}

func TestRunRTBHNoHijack(t *testing.T) {
	l := newLab(t)
	res, err := l.RunRTBH(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("RTBH no-hijack failed: %v", res.Evidence)
	}
	if res.Difficulty != Easy {
		t.Fatal("RTBH graded easy in Table 3")
	}
	// Cleanup happened: no leftover route at first upstream.
	if _, ok := l.W.Net.Router(l.Research.Upstreams[0]).BestRoute(netx.MustPrefix("198.18.0.0/24")); ok {
		t.Fatal("leftover announcement after scenario")
	}
}

func TestRunRTBHHijackNeedsIRR(t *testing.T) {
	l := newLab(t)
	res, err := l.RunRTBH(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("RTBH hijack failed: %v", res.Evidence)
	}
	if !res.Hijack {
		t.Fatal("hijack flag lost")
	}
}

func TestRunSteeringLocalPref(t *testing.T) {
	l := newLab(t)
	res, err := l.RunSteeringLocalPref(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Difficulty != Hard {
		t.Fatal("steering graded hard")
	}
	// Success depends on the generated topology offering a customer-chain
	// target; either way the result must carry evidence.
	if len(res.Evidence) == 0 {
		t.Fatal("no evidence recorded")
	}
}

func TestRunSteeringPrepend(t *testing.T) {
	l := newLab(t)
	res, err := l.RunSteeringPrepend(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evidence) == 0 {
		t.Fatal("no evidence recorded")
	}
}

func TestRunRouteManipulation(t *testing.T) {
	l := newLab(t)
	res, err := l.RunRouteManipulation(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("route manipulation failed: %v", res.Evidence)
	}
	if res.Difficulty != Medium {
		t.Fatal("manipulation graded medium")
	}
}

func TestTable3FullMatrix(t *testing.T) {
	l := newLab(t)
	results, err := l.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("results=%d", len(results))
	}
	// Paper shape: blackholing succeeds (easy); manipulation succeeds
	// (medium).
	if !results[0].Success || !results[1].Success {
		t.Fatal("blackholing rows must succeed")
	}
	if !results[6].Success || !results[7].Success {
		t.Fatal("manipulation rows must succeed")
	}
	if RenderTable3(results) == "" {
		t.Fatal("render empty")
	}
}

func TestBlackholeSweep(t *testing.T) {
	l := newLab(t)
	cands := l.W.Registry.All()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	rep, err := l.BlackholeSweep(cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != len(cands) {
		t.Fatalf("entries=%d", len(rep.Entries))
	}
	ind := rep.InducingCommunities()
	if len(ind) == 0 {
		t.Fatal("no community induced blackholing")
	}
	// Only a subset of candidates induce loss (8.1% in the paper; here it
	// depends on which targets sit on VP paths).
	if len(ind) == len(rep.Entries) {
		t.Fatal("every candidate inducing loss is implausible")
	}
	if len(rep.AffectedVPs()) == 0 {
		t.Fatal("no affected VPs")
	}
	if !rep.Stable {
		t.Fatal("re-run did not match (§7.6 stability)")
	}
	// Ground-truth scoring: precision must be perfect (decoys trigger
	// nothing), recall positive but possibly partial (targets off-path).
	p, r := rep.PrecisionRecall()
	if p != 1.0 {
		t.Fatalf("precision=%v (a decoy induced loss)", p)
	}
	if r == 0 {
		t.Fatal("recall zero")
	}
	if RenderSweep(rep) == "" {
		t.Fatal("render empty")
	}
}

func TestSweepHopAnalysis(t *testing.T) {
	l := newLab(t)
	rep, err := l.BlackholeSweep(l.W.Registry.Verified)
	if err != nil {
		t.Fatal(err)
	}
	// At least one inducing entry should have hop distances when the
	// target appears on the (pre-blackhole) forwarding path.
	for _, e := range rep.InducingCommunities() {
		for _, d := range e.HopDistances {
			if d <= 0 {
				t.Fatalf("bad hop distance %d", d)
			}
		}
	}
}

func TestDifficultyStrings(t *testing.T) {
	for _, d := range []Difficulty{Easy, Medium, Hard, Difficulty(99)} {
		if d.String() == "" {
			t.Fatal("empty difficulty")
		}
	}
}

func TestUpdateIRR(t *testing.T) {
	l := newLab(t)
	p := netx.MustPrefix("203.0.113.0/24")
	if l.Research.AllowedPrefixes.Matches(p) {
		t.Fatal("prefix should not be pre-allowed")
	}
	l.UpdateIRR(l.Research, p)
	if !l.Research.AllowedPrefixes.Matches(p) {
		t.Fatal("IRR update did not register")
	}
	// More specifics also covered.
	if !l.Research.AllowedPrefixes.Matches(netx.MustPrefix("203.0.113.0/25")) {
		t.Fatal("more-specific not covered")
	}
	_ = bgp.CommunityBlackhole
}
