package netx

import (
	"net/netip"
)

// Trie is a binary radix trie mapping prefixes to values of type V. It
// supports exact insert/lookup/delete, longest-prefix match, and ordered
// walks. The zero value is not usable; call NewTrie. IPv4 and IPv6 prefixes
// live in separate sub-tries so mixed-family use is safe.
type Trie[V any] struct {
	v4, v6 *trieNode[V]
	size   int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
	// pfx is only meaningful when set is true.
	pfx netip.Prefix
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{v4: &trieNode[V]{}, v6: &trieNode[V]{}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

func (t *Trie[V]) root(p netip.Prefix) *trieNode[V] {
	if p.Addr().Is4() {
		return t.v4
	}
	return t.v6
}

// Insert stores v under prefix p, replacing any previous value. It reports
// whether the prefix was newly added.
func (t *Trie[V]) Insert(p netip.Prefix, v V) bool {
	p = p.Masked()
	n := t.root(p)
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set, n.pfx = v, true, p
	if added {
		t.size++
	}
	return added
}

// Get returns the value stored under exactly p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	p = p.Masked()
	n := t.root(p)
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes prefix p and reports whether it was present. Interior
// nodes are left in place; the trie is optimised for lookup-heavy FIB use.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	p = p.Masked()
	n := t.root(p)
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Lookup performs longest-prefix match for addr and returns the most
// specific covering prefix with its value.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	var n *trieNode[V]
	if addr.Is4() {
		n = t.v4
	} else {
		n = t.v6
	}
	var (
		best    *trieNode[V]
		bestPfx netip.Prefix
	)
	for i := 0; ; i++ {
		if n.set {
			best, bestPfx = n, n.pfx
		}
		if i >= addr.BitLen() {
			break
		}
		n = n.child[bitAt(addr, i)]
		if n == nil {
			break
		}
	}
	if best == nil {
		var zero V
		return netip.Prefix{}, zero, false
	}
	return bestPfx, best.val, true
}

// LookupPrefix performs longest-prefix match for an entire prefix: the
// result must cover all of p (i.e. have length <= p.Bits()).
func (t *Trie[V]) LookupPrefix(p netip.Prefix) (netip.Prefix, V, bool) {
	p = p.Masked()
	n := t.root(p)
	var (
		best    *trieNode[V]
		bestPfx netip.Prefix
	)
	for i := 0; ; i++ {
		if n.set {
			best, bestPfx = n, n.pfx
		}
		if i >= p.Bits() {
			break
		}
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			break
		}
	}
	if best == nil {
		var zero V
		return netip.Prefix{}, zero, false
	}
	return bestPfx, best.val, true
}

// Walk visits every stored prefix in canonical (bitwise) order. Returning
// false from fn stops the walk early.
func (t *Trie[V]) Walk(fn func(netip.Prefix, V) bool) {
	walkNode(t.v4, fn)
	walkNode(t.v6, fn)
}

func walkNode[V any](n *trieNode[V], fn func(netip.Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(n.pfx, n.val) {
			return false
		}
	}
	if !walkNode(n.child[0], fn) {
		return false
	}
	return walkNode(n.child[1], fn)
}

// Covered returns all stored prefixes covered by p (p itself included if
// stored), in canonical order.
func (t *Trie[V]) Covered(p netip.Prefix) []netip.Prefix {
	p = p.Masked()
	n := t.root(p)
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			return nil
		}
	}
	var out []netip.Prefix
	walkNode(n, func(q netip.Prefix, _ V) bool {
		out = append(out, q)
		return true
	})
	return out
}

// Set is a Trie with no payload, used as a prefix set.
type Set struct{ t *Trie[struct{}] }

// NewSet returns an empty prefix set.
func NewSet() *Set { return &Set{t: NewTrie[struct{}]()} }

// Add inserts p, reporting whether it was new.
func (s *Set) Add(p netip.Prefix) bool { return s.t.Insert(p, struct{}{}) }

// Contains reports whether exactly p is in the set.
func (s *Set) Contains(p netip.Prefix) bool { _, ok := s.t.Get(p); return ok }

// ContainsAddr reports whether any stored prefix covers addr.
func (s *Set) ContainsAddr(addr netip.Addr) bool { _, _, ok := s.t.Lookup(addr); return ok }

// CoversPrefix reports whether any stored prefix covers all of p.
func (s *Set) CoversPrefix(p netip.Prefix) bool { _, _, ok := s.t.LookupPrefix(p); return ok }

// Len returns the number of stored prefixes.
func (s *Set) Len() int { return s.t.Len() }
