package netx

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
	"testing/quick"
)

func TestMustPrefixMasks(t *testing.T) {
	p := MustPrefix("10.1.2.3/8")
	if p.String() != "10.0.0.0/8" {
		t.Fatalf("got %s, want 10.0.0.0/8", p)
	}
}

func TestMustPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad prefix")
		}
	}()
	MustPrefix("not-a-prefix")
}

func TestCovers(t *testing.T) {
	cases := []struct {
		outer, inner string
		covers, more bool
	}{
		{"10.0.0.0/8", "10.1.0.0/16", true, true},
		{"10.0.0.0/8", "10.0.0.0/8", true, false},
		{"10.1.0.0/16", "10.0.0.0/8", false, false},
		{"10.0.0.0/8", "11.0.0.0/16", false, false},
		{"0.0.0.0/0", "192.168.1.0/24", true, true},
		{"2001:db8::/32", "2001:db8:1::/48", true, true},
	}
	for _, c := range cases {
		o, i := MustPrefix(c.outer), MustPrefix(c.inner)
		if got := Covers(o, i); got != c.covers {
			t.Errorf("Covers(%s,%s)=%v want %v", c.outer, c.inner, got, c.covers)
		}
		if got := MoreSpecific(o, i); got != c.more {
			t.Errorf("MoreSpecific(%s,%s)=%v want %v", c.outer, c.inner, got, c.more)
		}
	}
}

func TestHalves(t *testing.T) {
	lo, hi := Halves(MustPrefix("10.0.0.0/8"))
	if lo.String() != "10.0.0.0/9" || hi.String() != "10.128.0.0/9" {
		t.Fatalf("got %s %s", lo, hi)
	}
	lo6, hi6 := Halves(MustPrefix("2001:db8::/32"))
	if lo6.String() != "2001:db8::/33" || hi6.String() != "2001:db8:8000::/33" {
		t.Fatalf("got %s %s", lo6, hi6)
	}
}

func TestHalvesPanicsOnHostRoute(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Halves(MustPrefix("1.2.3.4/32"))
}

func TestNthAddr(t *testing.T) {
	p := MustPrefix("192.0.2.0/24")
	if got := NthAddr(p, 1); got != V4(192, 0, 2, 1) {
		t.Fatalf("NthAddr(...,1)=%s", got)
	}
	if got := NthAddr(p, 256); got != V4(192, 0, 2, 0) {
		t.Fatalf("NthAddr should wrap, got %s", got)
	}
	p6 := MustPrefix("2001:db8::/64")
	a := NthAddr(p6, 5)
	if !p6.Contains(a) {
		t.Fatalf("NthAddr v6 escaped prefix: %s", a)
	}
}

func TestComparePrefixOrdering(t *testing.T) {
	ps := []netip.Prefix{
		MustPrefix("2001:db8::/32"),
		MustPrefix("10.0.0.0/16"),
		MustPrefix("10.0.0.0/8"),
		MustPrefix("9.0.0.0/8"),
	}
	sort.Slice(ps, func(i, j int) bool { return ComparePrefix(ps[i], ps[j]) < 0 })
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "2001:db8::/32"}
	for i, w := range want {
		if ps[i].String() != w {
			t.Fatalf("order[%d]=%s want %s", i, ps[i], w)
		}
	}
}

func TestTrieInsertGetDelete(t *testing.T) {
	tr := NewTrie[int]()
	if added := tr.Insert(MustPrefix("10.0.0.0/8"), 1); !added {
		t.Fatal("first insert should add")
	}
	if added := tr.Insert(MustPrefix("10.0.0.0/8"), 2); added {
		t.Fatal("second insert should replace, not add")
	}
	if v, ok := tr.Get(MustPrefix("10.0.0.0/8")); !ok || v != 2 {
		t.Fatalf("Get=%v,%v", v, ok)
	}
	if _, ok := tr.Get(MustPrefix("10.0.0.0/9")); ok {
		t.Fatal("sub-prefix should not be present")
	}
	if !tr.Delete(MustPrefix("10.0.0.0/8")) {
		t.Fatal("delete should report true")
	}
	if tr.Delete(MustPrefix("10.0.0.0/8")) {
		t.Fatal("double delete should report false")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len=%d want 0", tr.Len())
	}
}

func TestTrieLongestPrefixMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustPrefix("0.0.0.0/0"), "default")
	tr.Insert(MustPrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustPrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustPrefix("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.3.3", "sixteen"},
		{"10.9.9.9", "eight"},
		{"192.168.0.1", "default"},
	}
	for _, c := range cases {
		_, v, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s)=%q,%v want %q", c.addr, v, ok, c.want)
		}
	}
}

func TestTrieLookupMissAndFamilies(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustPrefix("10.0.0.0/8"), 4)
	tr.Insert(MustPrefix("2001:db8::/32"), 6)
	if _, _, ok := tr.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("expected miss")
	}
	if _, v, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1")); !ok || v != 6 {
		t.Fatal("v6 lookup failed")
	}
	if _, v, ok := tr.Lookup(netip.MustParseAddr("10.255.0.1")); !ok || v != 4 {
		t.Fatal("v4 lookup failed")
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustPrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustPrefix("10.1.0.0/16"), "sixteen")
	p, v, ok := tr.LookupPrefix(MustPrefix("10.1.2.0/24"))
	if !ok || v != "sixteen" || p.String() != "10.1.0.0/16" {
		t.Fatalf("got %s %q %v", p, v, ok)
	}
	// A /12 inside 10/8 but above /16 must match only the /8.
	_, v, ok = tr.LookupPrefix(MustPrefix("10.0.0.0/12"))
	if !ok || v != "eight" {
		t.Fatalf("got %q %v", v, ok)
	}
}

func TestTrieWalkOrderAndCovered(t *testing.T) {
	tr := NewTrie[int]()
	ins := []string{"10.1.2.0/24", "10.0.0.0/8", "11.0.0.0/8", "10.1.0.0/16"}
	for i, s := range ins {
		tr.Insert(MustPrefix(s), i)
	}
	var got []string
	tr.Walk(func(p netip.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8"}
	if len(got) != len(want) {
		t.Fatalf("walk len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk[%d]=%s want %s", i, got[i], want[i])
		}
	}
	cov := tr.Covered(MustPrefix("10.0.0.0/8"))
	if len(cov) != 3 {
		t.Fatalf("covered=%v", cov)
	}
	if cov := tr.Covered(MustPrefix("12.0.0.0/8")); cov != nil {
		t.Fatalf("covered should be empty, got %v", cov)
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustPrefix("10.0.0.0/8"), 0)
	tr.Insert(MustPrefix("11.0.0.0/8"), 1)
	n := 0
	tr.Walk(func(netip.Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("walk visited %d, want 1", n)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if !s.Add(MustPrefix("10.0.0.0/8")) || s.Add(MustPrefix("10.0.0.0/8")) {
		t.Fatal("Add semantics wrong")
	}
	if !s.Contains(MustPrefix("10.0.0.0/8")) || s.Contains(MustPrefix("10.0.0.0/9")) {
		t.Fatal("Contains wrong")
	}
	if !s.ContainsAddr(netip.MustParseAddr("10.2.3.4")) {
		t.Fatal("ContainsAddr wrong")
	}
	if !s.CoversPrefix(MustPrefix("10.1.0.0/16")) || s.CoversPrefix(MustPrefix("11.0.0.0/16")) {
		t.Fatal("CoversPrefix wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d", s.Len())
	}
}

// randomV4Prefix derives a masked IPv4 prefix from arbitrary quick inputs.
func randomV4Prefix(a, b, c, d byte, bits uint8) netip.Prefix {
	return netip.PrefixFrom(V4(a, b, c, d), int(bits%33)).Masked()
}

// Property: after inserting a prefix, looking up any address inside it
// returns a covering prefix.
func TestTrieProperty_LookupCovers(t *testing.T) {
	tr := NewTrie[int]()
	f := func(a, b, c, d byte, bits uint8) bool {
		p := randomV4Prefix(a, b, c, d, bits)
		tr.Insert(p, 1)
		got, _, ok := tr.Lookup(p.Addr())
		return ok && Covers(got, netip.PrefixFrom(p.Addr(), 32))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: trie longest-prefix match agrees with a linear scan over the
// same prefix set.
func TestTrieProperty_MatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewTrie[int]()
	var all []netip.Prefix
	for i := 0; i < 500; i++ {
		p := randomV4Prefix(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), uint8(rng.Intn(33)))
		if tr.Insert(p, i) {
			all = append(all, p)
		}
	}
	linear := func(a netip.Addr) (netip.Prefix, bool) {
		best, ok := netip.Prefix{}, false
		for _, p := range all {
			if p.Contains(a) && (!ok || p.Bits() > best.Bits()) {
				best, ok = p, true
			}
		}
		return best, ok
	}
	for i := 0; i < 1000; i++ {
		a := V4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		wantP, wantOK := linear(a)
		gotP, _, gotOK := tr.Lookup(a)
		if wantOK != gotOK || (wantOK && wantP != gotP) {
			t.Fatalf("addr %s: trie=%v,%v linear=%v,%v", a, gotP, gotOK, wantP, wantOK)
		}
	}
}

// Property: insert then delete returns the trie to not containing the key.
func TestTrieProperty_DeleteRemoves(t *testing.T) {
	f := func(a, b, c, d byte, bits uint8) bool {
		tr := NewTrie[int]()
		p := randomV4Prefix(a, b, c, d, bits)
		tr.Insert(p, 7)
		tr.Delete(p)
		_, ok := tr.Get(p)
		return !ok && tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTrie[int]()
	for i := 0; i < 10000; i++ {
		tr.Insert(randomV4Prefix(byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0, uint8(8+rng.Intn(17))), i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = V4(byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}
