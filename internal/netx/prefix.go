// Package netx provides IP prefix utilities shared by the BGP codec, the
// routing simulator, and the measurement pipeline: parsing helpers, prefix
// arithmetic (sub-prefix tests, more-specific enumeration), and a binary
// trie supporting longest-prefix match, which backs every FIB in the
// simulator.
package netx

import (
	"fmt"
	"net/netip"
)

// MustPrefix parses s as a CIDR prefix and panics on error. It is intended
// for tests, examples, and statically-known constants.
func MustPrefix(s string) netip.Prefix {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		panic(fmt.Sprintf("netx: bad prefix %q: %v", s, err))
	}
	return p.Masked()
}

// V4 builds an IPv4 address from four octets.
func V4(a, b, c, d byte) netip.Addr {
	return netip.AddrFrom4([4]byte{a, b, c, d})
}

// PrefixV4 builds a masked IPv4 prefix from four octets and a bit length.
func PrefixV4(a, b, c, d byte, bits int) netip.Prefix {
	return netip.PrefixFrom(V4(a, b, c, d), bits).Masked()
}

// Covers reports whether outer contains every address of inner, i.e. inner
// is equal to or more specific than outer.
func Covers(outer, inner netip.Prefix) bool {
	return outer.Bits() <= inner.Bits() && outer.Contains(inner.Addr())
}

// MoreSpecific reports whether inner is a strictly more-specific prefix of
// outer (covered and longer).
func MoreSpecific(outer, inner netip.Prefix) bool {
	return outer.Bits() < inner.Bits() && outer.Contains(inner.Addr())
}

// Halves splits p into its two immediate more-specific halves. It panics if
// p is a host route (full-length prefix) that cannot be split.
func Halves(p netip.Prefix) (lo, hi netip.Prefix) {
	bits := p.Bits()
	if bits >= p.Addr().BitLen() {
		panic("netx: cannot split host route " + p.String())
	}
	lo = netip.PrefixFrom(p.Addr(), bits+1).Masked()
	hiAddr := setBit(p.Addr(), bits)
	hi = netip.PrefixFrom(hiAddr, bits+1).Masked()
	return lo, hi
}

// NthAddr returns the n-th address inside p (0-based), wrapping within the
// prefix if n exceeds its size. It is used by workload generators to pick
// probe targets deterministically.
func NthAddr(p netip.Prefix, n uint64) netip.Addr {
	hostBits := uint(p.Addr().BitLen() - p.Bits())
	if hostBits < 64 && hostBits > 0 {
		n %= uint64(1) << hostBits
	}
	if p.Addr().Is4() {
		b := p.Addr().As4()
		v := be32(b[:]) + uint32(n)
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	b := p.Addr().As16()
	// Add n to the low 64 bits; sufficient for generator use.
	lo := be64(b[8:]) + n
	putBE64(b[8:], lo)
	return netip.AddrFrom16(b)
}

// bitAt returns bit i (0 = most significant) of addr.
func bitAt(addr netip.Addr, i int) byte {
	if addr.Is4() {
		b := addr.As4()
		return (b[i/8] >> (7 - i%8)) & 1
	}
	b := addr.As16()
	return (b[i/8] >> (7 - i%8)) & 1
}

// setBit returns addr with bit i (0 = most significant) set to one.
func setBit(addr netip.Addr, i int) netip.Addr {
	if addr.Is4() {
		b := addr.As4()
		b[i/8] |= 1 << (7 - i%8)
		return netip.AddrFrom4(b)
	}
	b := addr.As16()
	b[i/8] |= 1 << (7 - i%8)
	return netip.AddrFrom16(b)
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func be64(b []byte) uint64 {
	return uint64(be32(b))<<32 | uint64(be32(b[4:]))
}

func putBE64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// ComparePrefix orders prefixes by address family, then address, then
// length. It is suitable for sort.Slice and produces the canonical order
// used in RIB dumps.
func ComparePrefix(a, b netip.Prefix) int {
	if a.Addr().Is4() != b.Addr().Is4() {
		if a.Addr().Is4() {
			return -1
		}
		return 1
	}
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}
