package topo

import (
	"math"
	"math/rand"
	"sort"
)

// Sample returns a subgraph of roughly target ASes that preserves the
// degree skew of g — the property the paper's propagation distances and
// the internet preset's realism hinge on. Nodes are drawn by weighted
// reservoir sampling with weight = degree, so hubs survive at full
// scale while the stub tail thins uniformly; the edge set is the
// induced subgraph; and every surviving AS that lost all its providers
// is re-attached to the nearest sampled AS in its original provider
// closure, so the customer-provider hierarchy stays connected and
// valley-free paths to the top remain.
//
// The result is deterministic for a fixed (g, target, seed). A target
// at or above g's size returns a clone.
func Sample(g *Graph, target int, seed int64) *Graph {
	all := g.ASes()
	if target >= len(all) {
		return g.Clone()
	}
	if target <= 0 {
		return NewGraph()
	}

	// Efraimidis-Spirakis weighted reservoir: key = U^(1/w), keep the
	// top-target keys. Iterating ASes in ascending order with a seeded
	// RNG makes the draw deterministic.
	rng := rand.New(rand.NewSource(seed))
	type scored struct {
		asn ASN
		key float64
	}
	keys := make([]scored, 0, len(all))
	for _, a := range all {
		w := float64(g.Degree(a))
		if w <= 0 {
			w = 0.1 // isolated nodes can still be drawn, just rarely
		}
		keys = append(keys, scored{asn: a, key: math.Pow(rng.Float64(), 1/w)})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].key != keys[j].key {
			return keys[i].key > keys[j].key
		}
		return keys[i].asn < keys[j].asn
	})

	kept := make(map[ASN]bool, target)
	out := NewGraph()
	for _, s := range keys[:target] {
		kept[s.asn] = true
		out.AddAS(s.asn)
	}

	// Induce the edge set.
	for _, l := range g.Links() {
		if !kept[l.A] || !kept[l.B] {
			continue
		}
		switch l.RelBtoA {
		case RelCustomer: // B buys from A
			out.AddCustomerProvider(l.B, l.A)
		case RelProvider: // A buys from B
			out.AddCustomerProvider(l.A, l.B)
		case RelPeer:
			out.AddPeering(l.A, l.B)
		}
	}

	// Re-home orphans: an AS that had providers but kept none climbs its
	// original provider closure (breadth-first, ascending for
	// determinism) until it reaches a sampled AS, and buys transit
	// there. This preserves each node's position under the hierarchy
	// without inventing lateral shortcuts.
	for _, a := range out.ASes() {
		if len(g.Providers(a)) == 0 || len(out.Providers(a)) > 0 {
			continue // original tier-1, or still homed
		}
		if p, ok := nearestKeptProvider(g, a, kept); ok {
			out.AddCustomerProvider(a, p)
		}
	}
	return out
}

// nearestKeptProvider walks a's provider closure in g breadth-first and
// returns the first AS present in kept.
func nearestKeptProvider(g *Graph, a ASN, kept map[ASN]bool) (ASN, bool) {
	frontier := g.Providers(a)
	seen := map[ASN]bool{a: true}
	for len(frontier) > 0 {
		var next []ASN
		for _, p := range frontier {
			if seen[p] {
				continue
			}
			seen[p] = true
			if kept[p] && p != a {
				return p, true
			}
			next = append(next, g.Providers(p)...)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	return 0, false
}
