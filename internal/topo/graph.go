// Package topo models the AS-level Internet topology: business
// relationships between ASes (customer-provider and settlement-free
// peering), structural classification (stub / transit / tier-1), valley-free
// path checks, and import/export in the CAIDA serial-1 relationship format
// used by the paper's §4.4 filtering analysis.
package topo

import (
	"fmt"
	"sort"
)

// ASN is an autonomous system number.
type ASN = uint32

// Rel is the business relationship of a neighbor as seen from a local AS.
type Rel int8

// Relationship values. The direction convention is "what the neighbor is
// to me": RelProvider means the neighbor sells me transit.
const (
	RelNone     Rel = 0
	RelProvider Rel = 1
	RelCustomer Rel = -1
	RelPeer     Rel = 2
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	default:
		return "none"
	}
}

// Graph is an undirected AS graph with typed edges. The zero value is not
// usable; call NewGraph.
type Graph struct {
	// rel[a][b] is what b is to a.
	rel map[ASN]map[ASN]Rel
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{rel: make(map[ASN]map[ASN]Rel)}
}

func (g *Graph) set(a, b ASN, r Rel) {
	m := g.rel[a]
	if m == nil {
		m = make(map[ASN]Rel)
		g.rel[a] = m
	}
	m[b] = r
}

// ensure registers an AS even if it has no edges yet.
func (g *Graph) ensure(a ASN) {
	if g.rel[a] == nil {
		g.rel[a] = make(map[ASN]Rel)
	}
}

// AddAS registers asn with no links.
func (g *Graph) AddAS(asn ASN) { g.ensure(asn) }

// AddCustomerProvider records that cust buys transit from prov. Re-adding
// an edge overwrites its type.
func (g *Graph) AddCustomerProvider(cust, prov ASN) error {
	if cust == prov {
		return fmt.Errorf("topo: self link at AS%d", cust)
	}
	g.set(cust, prov, RelProvider)
	g.set(prov, cust, RelCustomer)
	return nil
}

// AddPeering records a settlement-free peering between a and b.
func (g *Graph) AddPeering(a, b ASN) error {
	if a == b {
		return fmt.Errorf("topo: self peering at AS%d", a)
	}
	g.set(a, b, RelPeer)
	g.set(b, a, RelPeer)
	return nil
}

// Relationship returns what b is to a.
func (g *Graph) Relationship(a, b ASN) Rel {
	return g.rel[a][b]
}

// HasLink reports whether a and b are adjacent.
func (g *Graph) HasLink(a, b ASN) bool { return g.rel[a][b] != RelNone }

// Neighbors returns all neighbors of a in ascending order.
func (g *Graph) Neighbors(a ASN) []ASN {
	m := g.rel[a]
	out := make([]ASN, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// neighborsOf returns neighbors of a with relationship r, sorted.
func (g *Graph) neighborsOf(a ASN, r Rel) []ASN {
	var out []ASN
	for n, rel := range g.rel[a] {
		if rel == r {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Providers returns the ASes a buys transit from.
func (g *Graph) Providers(a ASN) []ASN { return g.neighborsOf(a, RelProvider) }

// Customers returns the ASes buying transit from a.
func (g *Graph) Customers(a ASN) []ASN { return g.neighborsOf(a, RelCustomer) }

// Peers returns a's settlement-free peers.
func (g *Graph) Peers(a ASN) []ASN { return g.neighborsOf(a, RelPeer) }

// ASes returns every registered AS in ascending order.
func (g *Graph) ASes() []ASN {
	out := make([]ASN, 0, len(g.rel))
	for a := range g.rel {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumASes returns the AS count.
func (g *Graph) NumASes() int { return len(g.rel) }

// NumLinks returns the undirected edge count.
func (g *Graph) NumLinks() int {
	n := 0
	for _, m := range g.rel {
		n += len(m)
	}
	return n / 2
}

// IsStub reports whether a has no customers (edge AS).
func (g *Graph) IsStub(a ASN) bool { return len(g.Customers(a)) == 0 }

// IsTransit reports whether a has at least one customer, the structural
// transit definition.
func (g *Graph) IsTransit(a ASN) bool { return !g.IsStub(a) }

// IsTier1 reports whether a has no providers (top of the hierarchy).
func (g *Graph) IsTier1(a ASN) bool {
	return len(g.Providers(a)) == 0 && len(g.rel[a]) > 0
}

// ValleyFree reports whether path (origin last, as in AS_PATH display
// order nearest-first) obeys Gao-Rexford export rules: once the path goes
// "down" (provider→customer) or crosses a peering link, it must continue
// down. The path is interpreted in propagation direction origin→observer,
// i.e. reversed from AS_PATH order.
func (g *Graph) ValleyFree(aspath []ASN) bool {
	if len(aspath) < 2 {
		return true
	}
	// Propagation order: origin first.
	prop := make([]ASN, len(aspath))
	for i, a := range aspath {
		prop[len(aspath)-1-i] = a
	}
	phase := 0 // 0=uphill, 1=after peak (peer crossed or downhill)
	for i := 0; i+1 < len(prop); i++ {
		from, to := prop[i], prop[i+1]
		rel := g.Relationship(from, to) // what `to` is to `from`
		switch rel {
		case RelProvider: // going up
			if phase != 0 {
				return false
			}
		case RelPeer:
			if phase != 0 {
				return false
			}
			phase = 1
		case RelCustomer: // going down
			phase = 1
		default:
			return false // not adjacent
		}
	}
	return true
}

// Degree returns a's total neighbor count.
func (g *Graph) Degree(a ASN) int { return len(g.rel[a]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	for a, m := range g.rel {
		nm := make(map[ASN]Rel, len(m))
		for b, r := range m {
			nm[b] = r
		}
		out.rel[a] = nm
	}
	return out
}

// Links returns every undirected link once, with Rel expressed as what B
// is to A, ordered deterministically.
type Link struct {
	A, B ASN
	// RelBtoA is what B is to A (RelCustomer: B buys from A).
	RelBtoA Rel
}

// Links enumerates the graph's edges deterministically.
func (g *Graph) Links() []Link {
	var out []Link
	for _, a := range g.ASes() {
		for _, b := range g.Neighbors(a) {
			if b < a {
				continue
			}
			out = append(out, Link{A: a, B: b, RelBtoA: g.rel[a][b]})
		}
	}
	return out
}
