package topo

import (
	"math/rand"
	"testing"
)

// skewedGraph builds a CAIDA-shaped test topology: a tier-1 clique, a
// mid tier with front-loaded provider attachment, and a long stub tail.
func skewedGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	rng := rand.New(rand.NewSource(11))
	var t1 []ASN
	for a := ASN(1); a <= 5; a++ {
		t1 = append(t1, a)
	}
	for i, a := range t1 {
		for _, b := range t1[i+1:] {
			if err := g.AddPeering(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	var mids []ASN
	for a := ASN(100); a < 160; a++ {
		mids = append(mids, a)
		cands := append(append([]ASN(nil), t1...), mids[:len(mids)-1]...)
		idx := int(float64(len(cands)) * rng.Float64() * rng.Float64())
		if err := g.AddCustomerProvider(a, cands[idx]); err != nil {
			t.Fatal(err)
		}
	}
	for a := ASN(1000); a < 3000; a++ {
		idx := int(float64(len(mids)) * rng.Float64() * rng.Float64())
		if err := g.AddCustomerProvider(a, mids[idx]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func maxDegreeAS(g *Graph) (ASN, int) {
	var best ASN
	bestD := -1
	for _, a := range g.ASes() {
		if d := g.Degree(a); d > bestD {
			best, bestD = a, d
		}
	}
	return best, bestD
}

func TestSampleDegreePreserving(t *testing.T) {
	g := skewedGraph(t)
	target := 400
	s := Sample(g, target, 7)

	if got := s.NumASes(); got < target*9/10 || got > target {
		t.Fatalf("sampled size %d, want ~%d", got, target)
	}

	// The hubs must survive: the max-degree AS and the tier-1 clique
	// carry the skew.
	hub, hubDeg := maxDegreeAS(g)
	if s.Degree(hub) == 0 {
		t.Fatalf("max-degree AS%d (degree %d) was dropped", hub, hubDeg)
	}

	// Degree skew is preserved: the sampled max degree stays within the
	// original's, and the sampled mean degree is in the same regime
	// (tree-like, between 1 and the original mean times a slack factor).
	_, sampleMax := maxDegreeAS(s)
	if sampleMax > hubDeg {
		t.Fatalf("sampling invented degree: %d > %d", sampleMax, hubDeg)
	}
	origMean := float64(2*g.NumLinks()) / float64(g.NumASes())
	sampleMean := float64(2*s.NumLinks()) / float64(s.NumASes())
	if sampleMean < 1 || sampleMean > 2*origMean {
		t.Fatalf("mean degree %.2f out of regime (original %.2f)", sampleMean, origMean)
	}

	// Hierarchy preserved: every sampled AS that had providers still has
	// at least one, so valley-free paths to the top exist.
	for _, a := range s.ASes() {
		if len(g.Providers(a)) > 0 && len(s.Providers(a)) == 0 {
			t.Fatalf("AS%d lost all providers in the sample", a)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	g := skewedGraph(t)
	a := Sample(g, 300, 42)
	b := Sample(g, 300, 42)
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("links diverge at %d: %+v vs %+v", i, la[i], lb[i])
		}
	}
	if c := Sample(g, 300, 43); len(c.Links()) == len(la) {
		same := true
		cl := c.Links()
		for i := range la {
			if la[i] != cl[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical samples")
		}
	}
}

func TestSampleEdgeCases(t *testing.T) {
	g := skewedGraph(t)
	if s := Sample(g, g.NumASes()+10, 1); s.NumASes() != g.NumASes() {
		t.Fatalf("oversized target: got %d ASes, want %d", s.NumASes(), g.NumASes())
	}
	if s := Sample(g, 0, 1); s.NumASes() != 0 {
		t.Fatalf("zero target: got %d ASes", s.NumASes())
	}
}
