package topo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CAIDA serial-1 relationship format: lines of "a|b|rel" where rel -1
// means a is provider of b, and 0 means a and b peer. Comment lines start
// with '#'. This is the dataset format the paper joins against in §4.4.

// WriteCAIDA exports the graph in serial-1 format.
func WriteCAIDA(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# bgpworms AS relationships (CAIDA serial-1: <provider|peer>|<customer|peer>|<-1|0>)"); err != nil {
		return err
	}
	for _, l := range g.Links() {
		// Serial-1 lists provider first for transit links.
		switch l.RelBtoA {
		case RelCustomer: // B is A's customer => A is provider
			if _, err := fmt.Fprintf(bw, "%d|%d|-1\n", l.A, l.B); err != nil {
				return err
			}
		case RelProvider: // B is A's provider
			if _, err := fmt.Fprintf(bw, "%d|%d|-1\n", l.B, l.A); err != nil {
				return err
			}
		case RelPeer:
			if _, err := fmt.Fprintf(bw, "%d|%d|0\n", l.A, l.B); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCAIDA imports a serial-1 relationship file.
func ReadCAIDA(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "|")
		if len(parts) < 3 {
			return nil, fmt.Errorf("topo: line %d: need a|b|rel, got %q", line, text)
		}
		a, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad ASN %q", line, parts[0])
		}
		b, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad ASN %q", line, parts[1])
		}
		rel, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad rel %q", line, parts[2])
		}
		switch rel {
		case -1:
			if err := g.AddCustomerProvider(ASN(b), ASN(a)); err != nil {
				return nil, fmt.Errorf("topo: line %d: %v", line, err)
			}
		case 0:
			if err := g.AddPeering(ASN(a), ASN(b)); err != nil {
				return nil, fmt.Errorf("topo: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("topo: line %d: unknown relationship %d", line, rel)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
