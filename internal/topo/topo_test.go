package topo

import (
	"bytes"
	"strings"
	"testing"
)

// diamond builds: 10 and 20 are tier-1 peers; 30 buys from 10 and 20;
// 40 buys from 30; 50 buys from 20.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddPeering(10, 20))
	must(g.AddCustomerProvider(30, 10))
	must(g.AddCustomerProvider(30, 20))
	must(g.AddCustomerProvider(40, 30))
	must(g.AddCustomerProvider(50, 20))
	return g
}

func TestRelationships(t *testing.T) {
	g := diamond(t)
	if g.Relationship(30, 10) != RelProvider {
		t.Error("10 should be provider of 30")
	}
	if g.Relationship(10, 30) != RelCustomer {
		t.Error("30 should be customer of 10")
	}
	if g.Relationship(10, 20) != RelPeer || g.Relationship(20, 10) != RelPeer {
		t.Error("10-20 should peer")
	}
	if g.Relationship(10, 40) != RelNone {
		t.Error("10-40 not adjacent")
	}
	if !g.HasLink(30, 40) || g.HasLink(40, 50) {
		t.Error("HasLink wrong")
	}
}

func TestSelfLinksRejected(t *testing.T) {
	g := NewGraph()
	if err := g.AddPeering(5, 5); err == nil {
		t.Error("self peering must fail")
	}
	if err := g.AddCustomerProvider(5, 5); err == nil {
		t.Error("self transit must fail")
	}
}

func TestAccessors(t *testing.T) {
	g := diamond(t)
	if got := g.Providers(30); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("Providers(30)=%v", got)
	}
	if got := g.Customers(20); len(got) != 2 || got[0] != 30 || got[1] != 50 {
		t.Errorf("Customers(20)=%v", got)
	}
	if got := g.Peers(10); len(got) != 1 || got[0] != 20 {
		t.Errorf("Peers(10)=%v", got)
	}
	if got := g.Neighbors(20); len(got) != 3 {
		t.Errorf("Neighbors(20)=%v", got)
	}
	if g.NumASes() != 5 || g.NumLinks() != 5 {
		t.Errorf("NumASes=%d NumLinks=%d", g.NumASes(), g.NumLinks())
	}
	if g.Degree(20) != 3 || g.Degree(40) != 1 {
		t.Error("Degree wrong")
	}
}

func TestClassification(t *testing.T) {
	g := diamond(t)
	if !g.IsStub(40) || !g.IsStub(50) || g.IsStub(30) {
		t.Error("stub classification wrong")
	}
	if !g.IsTransit(30) || !g.IsTransit(10) || g.IsTransit(40) {
		t.Error("transit classification wrong")
	}
	if !g.IsTier1(10) || !g.IsTier1(20) || g.IsTier1(30) {
		t.Error("tier1 classification wrong")
	}
	lonely := NewGraph()
	lonely.AddAS(99)
	if lonely.IsTier1(99) {
		t.Error("isolated AS is not tier1")
	}
}

func TestValleyFree(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		name string
		path []ASN // AS_PATH order: nearest first, origin last
		want bool
	}{
		{"up only", []ASN{10, 30, 40}, true},               // 40→30→10 uphill
		{"up peer down", []ASN{50, 20, 10}, false},         // 10→20 up? 20 is peer of 10... path 50 20 10: origin 10, 10→20 peer, 20→50 down: valid
		{"down then up invalid", []ASN{20, 10, 30}, false}, // origin 30: 30→10 up, 10→20 peer ok... wait
		{"single", []ASN{40}, true},
		{"adjacent", []ASN{30, 40}, true},
		{"not adjacent", []ASN{40, 10}, false},
	}
	// Recompute the two tricky expectations explicitly:
	// path {50,20,10}: propagation 10→20→50. 10→20 peer (phase→1), 20→50
	// customer (down) — valley-free. Fix expectation.
	cases[1].want = true
	// path {20,10,30}: propagation 30→10→20. 30→10 provider (up), 10→20
	// peer — allowed while phase 0 — valley-free too.
	cases[2].want = true

	for _, c := range cases {
		if got := g.ValleyFree(c.path); got != c.want {
			t.Errorf("%s: ValleyFree(%v)=%v want %v", c.name, c.path, got, c.want)
		}
	}

	// A true valley: 40→30→10 up then... 10→20 peer then 20→30 customer
	// then 30→... re-up would be a valley. Path AS_PATH order {40,30,20,10}
	// means propagation 10→20→30→40: 10→20 peer (phase 1), 20→30 down ok,
	// 30→40 down ok — valley free.
	if !g.ValleyFree([]ASN{40, 30, 20, 10}) {
		t.Error("peer then downhill should be valley-free")
	}
	// Propagation 40→30→10→20... wait that's AS_PATH {20,10,30,40}:
	// 40→30 provider (up), 30→10 provider (up), 10→20 peer — valley-free.
	if !g.ValleyFree([]ASN{20, 10, 30, 40}) {
		t.Error("uphill then peer should be valley-free")
	}
	// True valley: up after down. AS_PATH {30,10,20,50}: propagation
	// 50→20→10→30: 50→20 up, 20→10 peer (phase 1), 10→30 customer(down)
	// ok. Still valley free. Use {10,20,50} reversed... Construct: path
	// through two peering links: AS_PATH {10,20,...}? 10-20 is the only
	// peering. Down then up: propagation 10→30 (down), 30→20 (up): AS_PATH
	// {20,30,10} must be a valley.
	if g.ValleyFree([]ASN{20, 30, 10}) {
		t.Error("down-then-up must be a valley")
	}
}

func TestLinksDeterministic(t *testing.T) {
	g := diamond(t)
	l1 := g.Links()
	l2 := g.Links()
	if len(l1) != 5 || len(l1) != len(l2) {
		t.Fatalf("links=%v", l1)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("Links not deterministic")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.AddCustomerProvider(60, 10)
	if g.HasLink(60, 10) {
		t.Fatal("clone mutated original")
	}
	if c.NumASes() != 6 || g.NumASes() != 5 {
		t.Fatal("counts wrong")
	}
}

func TestCAIDARoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := WriteCAIDA(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCAIDA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumASes() != g.NumASes() || got.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip: %d ASes %d links", got.NumASes(), got.NumLinks())
	}
	for _, l := range g.Links() {
		if got.Relationship(l.A, l.B) != g.Relationship(l.A, l.B) {
			t.Fatalf("edge %d-%d relationship changed", l.A, l.B)
		}
	}
}

func TestReadCAIDAErrors(t *testing.T) {
	cases := map[string]string{
		"short line":  "1|2",
		"bad asn a":   "x|2|0",
		"bad asn b":   "1|y|0",
		"bad rel":     "1|2|z",
		"unknown rel": "1|2|7",
		"self link":   "1|1|0",
	}
	for name, in := range cases {
		if _, err := ReadCAIDA(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error for %q", name, in)
		}
	}
	// Comments and blanks are fine.
	g, err := ReadCAIDA(strings.NewReader("# comment\n\n1|2|0\n"))
	if err != nil || g.NumLinks() != 1 {
		t.Fatalf("comment handling: %v %d", err, g.NumLinks())
	}
}
