// Package collector models the public route-collector platforms of §4.1
// (RIPE RIS, RouteViews, Isolario, PCH): collectors peer with production
// ASes, receive full / partial / customer-only feeds, record every update,
// and export the streams and RIB snapshots in MRT so the measurement
// pipeline consumes exactly the wire format the paper's pipeline did.
package collector

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/netip"
	"sort"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/mrt"
	"bgpworms/internal/obs"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// observationsTotal counts every observation recorded by any collector
// tap in the process (one atomic add per kept delivery; metrics are
// observational only — recorded streams are identical either way).
var observationsTotal = obs.Default.Counter("collector_observations_total",
	"observations recorded across all collectors")

// Platform identifies a collector platform.
type Platform string

// The four platforms of Table 1.
const (
	PlatformRIS Platform = "RIS"
	PlatformRV  Platform = "RV"
	PlatformIS  Platform = "IS"
	PlatformPCH Platform = "PCH"
)

// Platforms lists all platforms in Table 1 row order.
var Platforms = []Platform{PlatformRIS, PlatformRV, PlatformIS, PlatformPCH}

// FeedType describes what a peer sends the collector (§4.1: "Some BGP
// peers send full routing tables, others partial views, and even others
// only their customer routes").
type FeedType int

// Feed types.
const (
	FullFeed FeedType = iota
	PartialFeed
	CustomerFeed
)

// String names the feed type.
func (f FeedType) String() string {
	switch f {
	case FullFeed:
		return "full"
	case PartialFeed:
		return "partial"
	case CustomerFeed:
		return "customer"
	default:
		return "unknown"
	}
}

// Peer is one collector peering session.
type Peer struct {
	AS   topo.ASN
	Feed FeedType
	// IP is the session address, synthesized deterministically if unset.
	IP netip.Addr
}

// Observation is one recorded routing event at a collector.
type Observation struct {
	Seq    int
	Time   time.Time
	PeerAS topo.ASN
	Prefix netip.Prefix
	// Route is nil for withdrawals.
	Route *policy.Route
}

// Collector is a passive measurement node attached to the network.
type Collector struct {
	Platform Platform
	Name     string
	ASN      topo.ASN

	peers map[topo.ASN]Peer
	node  *router.Router
	net   *simnet.Network
	obs   []Observation
	subs  []func(Observation)
	clock time.Time
	seq   int
}

// New creates a collector. asn must be unused by the production network.
func New(platform Platform, name string, asn topo.ASN, start time.Time) *Collector {
	return &Collector{
		Platform: platform,
		Name:     name,
		ASN:      asn,
		peers:    make(map[topo.ASN]Peer),
		node: router.New(router.Config{
			ASN:    asn,
			Vendor: router.VendorJuniper,
			// Collector sessions are special: no policy, keep everything.
			Propagation: policy.PropForwardAll,
		}),
		clock: start,
	}
}

// AddPeer registers a peering session to be wired at attach time.
func (c *Collector) AddPeer(p Peer) {
	if !p.IP.IsValid() {
		p.IP = peerIP(c.ASN, p.AS)
	}
	c.peers[p.AS] = p
}

// Peers returns sessions in ascending peer-AS order.
func (c *Collector) Peers() []Peer {
	out := make([]Peer, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AS < out[j].AS })
	return out
}

// Attach inserts the collector into the network: a router node, one
// session per peer (full feeds ride a customer relationship so the peer
// exports its entire table; customer feeds ride a peer relationship), and
// a tap recording every delivery to the collector.
func (c *Collector) Attach(n *simnet.Network) error {
	c.net = n
	n.AddRouter(c.node)
	for _, p := range c.Peers() {
		switch p.Feed {
		case FullFeed, PartialFeed:
			// Peer treats collector as customer => exports everything.
			if err := n.Connect(p.AS, c.ASN, topo.RelCustomer); err != nil {
				return err
			}
		case CustomerFeed:
			// Peer treats collector as peer => exports customer routes.
			if err := n.Connect(p.AS, c.ASN, topo.RelPeer); err != nil {
				return err
			}
		}
		// Collector peerings are community-transparent (§4.3 footnote:
		// their configuration differs from the AS's regular policy).
		if pr := n.Router(p.AS); pr != nil {
			pr.EnableFullCommunityExport(c.ASN)
		}
	}
	n.Tap(c.tap)
	return nil
}

// tap records one delivery to the collector; it is the method value
// Attach and ForkInto register with the network.
func (c *Collector) tap(from, to topo.ASN, prefix netip.Prefix, rt *policy.Route) {
	if to != c.ASN {
		return
	}
	p, ok := c.peers[from]
	if !ok {
		return
	}
	if p.Feed == PartialFeed && !partialKeeps(c.ASN, from, prefix) {
		return
	}
	c.seq++
	c.clock = c.clock.Add(37 * time.Millisecond) // logical session clock
	var cp *policy.Route
	if rt != nil {
		cp = rt.Clone()
	}
	ob := Observation{Seq: c.seq, Time: c.clock, PeerAS: from, Prefix: prefix, Route: cp}
	c.obs = append(c.obs, ob)
	observationsTotal.Inc()
	for _, fn := range c.subs {
		fn(ob)
	}
}

// ForkInto clones the collector against a forked network: observations
// recorded so far are shared read-only (capacity-clamped so appends
// reallocate), the session clock and sequence continue where the
// snapshot stopped, and a fresh tap is registered on the fork. Live
// subscribers do not carry over — forks attach their own.
func (c *Collector) ForkInto(n *simnet.Network) *Collector {
	cp := &Collector{
		Platform: c.Platform,
		Name:     c.Name,
		ASN:      c.ASN,
		peers:    c.peers,
		node:     c.node,
		net:      n,
		obs:      c.obs[:len(c.obs):len(c.obs)],
		clock:    c.clock,
		seq:      c.seq,
	}
	n.Tap(cp.tap)
	return cp
}

// router resolves the collector's speaker in the attached network, so a
// forked collector reads the fork's copy-on-write router rather than the
// sealed snapshot original.
func (c *Collector) router() *router.Router {
	if c.net != nil {
		if r := c.net.Router(c.ASN); r != nil {
			return r
		}
	}
	return c.node
}

// OnObservation subscribes fn to the collector's live export: it runs
// for every observation recorded from now on, in sequence order, on the
// simulation goroutine. Streaming consumers (the watch engine) attach
// here instead of polling Observations.
func (c *Collector) OnObservation(fn func(Observation)) {
	c.subs = append(c.subs, fn)
}

// partialKeeps deterministically keeps ~half the prefixes of a partial
// feed.
func partialKeeps(collector, peer topo.ASN, p netip.Prefix) bool {
	h := fnv.New32a()
	var b [20]byte
	b[0] = byte(collector)
	b[1] = byte(peer)
	b[2] = byte(peer >> 8)
	a := p.Addr().As16()
	copy(b[3:], a[:])
	b[19] = byte(p.Bits())
	h.Write(b[:])
	return h.Sum32()%2 == 0
}

// Observations returns everything recorded so far.
func (c *Collector) Observations() []Observation { return c.obs }

// Node exposes the collector's router (its Adj-RIB-In is the RIB snapshot
// source). In a forked world this resolves through the network, so the
// fork's copy-on-write state is what callers read.
func (c *Collector) Node() *router.Router { return c.router() }

// peerIP derives a deterministic session address.
func peerIP(collector, peer topo.ASN) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(collector), byte(peer >> 8), byte(peer)})
}

// collectorIP is the local session address.
func collectorIP(collector topo.ASN) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(collector), 0, 1})
}

// WriteUpdatesMRT serializes all observations as BGP4MP_MESSAGE_AS4
// records, announcements and withdrawals alike.
func (c *Collector) WriteUpdatesMRT(w io.Writer) (int, error) {
	mw := mrt.NewWriter(w)
	for _, ob := range c.obs {
		msg, err := observationToUpdate(ob)
		if err != nil {
			return mw.Count(), err
		}
		rec := &mrt.BGP4MPMessage{
			Timestamp: ob.Time,
			PeerAS:    ob.PeerAS,
			LocalAS:   c.ASN,
			PeerIP:    peerIP(c.ASN, ob.PeerAS),
			LocalIP:   collectorIP(c.ASN),
			Message:   msg,
		}
		if err := mw.Write(rec); err != nil {
			return mw.Count(), err
		}
	}
	return mw.Count(), nil
}

// observationToUpdate converts a recorded route into a wire UPDATE.
func observationToUpdate(ob Observation) (*bgp.Update, error) {
	if ob.Route == nil {
		if ob.Prefix.Addr().Is4() {
			return &bgp.Update{Withdrawn: []netip.Prefix{ob.Prefix}}, nil
		}
		return &bgp.Update{Attrs: bgp.PathAttributes{MPUnreachNLRI: []netip.Prefix{ob.Prefix}}}, nil
	}
	rt := ob.Route
	attrs := bgp.PathAttributes{
		Origin:      rt.Origin,
		ASPath:      rt.ASPath.Clone(),
		Communities: rt.Communities.Clone(),
	}
	if ob.Prefix.Addr().Is4() {
		attrs.NextHop = peerIP(0, ob.PeerAS)
		return &bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{ob.Prefix}}, nil
	}
	attrs.MPReachNextHop = netip.MustParseAddr("2001:db8::1")
	attrs.MPReachNLRI = []netip.Prefix{ob.Prefix}
	return &bgp.Update{Attrs: attrs}, nil
}

// WriteRIBSnapshotMRT emits a TABLE_DUMP_V2 snapshot of the collector's
// current Adj-RIB-In: one PEER_INDEX_TABLE followed by one RIB record per
// prefix.
func (c *Collector) WriteRIBSnapshotMRT(w io.Writer, at time.Time) (int, error) {
	mw := mrt.NewWriter(w)
	peers := c.Peers()
	idx := make(map[topo.ASN]uint16, len(peers))
	pit := &mrt.PeerIndexTable{
		Timestamp:   at,
		CollectorID: collectorIP(c.ASN),
		ViewName:    c.Name,
	}
	for i, p := range peers {
		idx[p.AS] = uint16(i)
		pit.Peers = append(pit.Peers, mrt.PeerEntry{
			BGPID: peerIP(c.ASN, p.AS), IP: p.IP, AS: p.AS,
		})
	}
	if err := mw.Write(pit); err != nil {
		return mw.Count(), err
	}

	type entryKey struct{ p netip.Prefix }
	byPrefix := make(map[entryKey][]mrt.RIBEntry)
	var order []netip.Prefix
	c.router().EachAdjIn(func(p netip.Prefix, from topo.ASN, rt *policy.Route) {
		// Partial feeds are partial in the table too.
		if pr, ok := c.peers[from]; ok && pr.Feed == PartialFeed && !partialKeeps(c.ASN, from, p) {
			return
		}
		k := entryKey{p}
		if _, seen := byPrefix[k]; !seen {
			order = append(order, p)
		}
		byPrefix[k] = append(byPrefix[k], mrt.RIBEntry{
			PeerIndex:      idx[from],
			OriginatedTime: at,
			Attrs: bgp.PathAttributes{
				Origin:      rt.Origin,
				ASPath:      rt.ASPath.Clone(),
				NextHop:     peerIP(0, from),
				Communities: rt.Communities.Clone(),
			},
		})
	})
	for i, p := range order {
		rec := &mrt.RIB{Timestamp: at, Sequence: uint32(i), Prefix: p, Entries: byPrefix[entryKey{p}]}
		if err := mw.Write(rec); err != nil {
			return mw.Count(), err
		}
	}
	return mw.Count(), nil
}

// String describes the collector.
func (c *Collector) String() string {
	return fmt.Sprintf("%s/%s (AS%d, %d peers, %d observations)", c.Platform, c.Name, c.ASN, len(c.peers), len(c.obs))
}
