package collector

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/mrt"
	"bgpworms/internal/netx"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

var (
	pfx = netx.MustPrefix("203.0.113.0/24")
	t0  = time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)
)

// testNet: 1 (stub) < 2 < 3 (tier1) > 4 > 5 (stub); 3 peers nobody.
func testNet(t *testing.T) *simnet.Network {
	t.Helper()
	g := topo.NewGraph()
	for _, e := range [][2]topo.ASN{{1, 2}, {2, 3}, {4, 3}, {5, 4}} {
		if err := g.AddCustomerProvider(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return simnet.New(g, nil)
}

func TestFullFeedRecordsUpdates(t *testing.T) {
	n := testNet(t)
	c := New(PlatformRIS, "rrc00", 60001, t0)
	c.AddPeer(Peer{AS: 3, Feed: FullFeed})
	if err := c.Attach(n); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Announce(1, pfx, bgp.C(1, 200)); err != nil {
		t.Fatal(err)
	}
	obs := c.Observations()
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	last := obs[len(obs)-1]
	if last.PeerAS != 3 || last.Route == nil {
		t.Fatalf("obs=%+v", last)
	}
	if last.Route.ASPath.Origin() != 1 {
		t.Fatalf("origin=%d", last.Route.ASPath.Origin())
	}
	if !last.Route.Communities.Has(bgp.C(1, 200)) {
		t.Fatalf("communities=%v", last.Route.Communities)
	}
	// Timestamps are monotone.
	for i := 1; i < len(obs); i++ {
		if !obs[i].Time.After(obs[i-1].Time) {
			t.Fatal("non-monotone clock")
		}
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestCustomerFeedSeesOnlyCustomerRoutes(t *testing.T) {
	n := testNet(t)
	c := New(PlatformPCH, "ixp-rs", 60002, t0)
	c.AddPeer(Peer{AS: 4, Feed: CustomerFeed})
	if err := c.Attach(n); err != nil {
		t.Fatal(err)
	}
	// Prefix from AS1: reaches AS4 via its provider AS3 — NOT a customer
	// route of AS4, so a customer feed must not include it.
	n.Announce(1, pfx)
	for _, ob := range c.Observations() {
		if ob.Prefix == pfx {
			t.Fatal("customer feed leaked a provider-learned route")
		}
	}
	// Prefix from AS5 (customer of 4) IS seen.
	p5 := netx.MustPrefix("198.51.100.0/24")
	n.Announce(5, p5)
	found := false
	for _, ob := range c.Observations() {
		if ob.Prefix == p5 {
			found = true
		}
	}
	if !found {
		t.Fatal("customer feed missing customer route")
	}
}

func TestPartialFeedDropsSome(t *testing.T) {
	n := testNet(t)
	c := New(PlatformRV, "rv2", 60003, t0)
	c.AddPeer(Peer{AS: 3, Feed: PartialFeed})
	if err := c.Attach(n); err != nil {
		t.Fatal(err)
	}
	// Announce many prefixes; roughly half should be observed.
	total := 40
	for i := 0; i < total; i++ {
		p := netx.PrefixV4(100, byte(i), 0, 0, 24)
		if _, err := n.Announce(1, p); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, ob := range c.Observations() {
		seen[ob.Prefix.String()] = true
	}
	if len(seen) == 0 || len(seen) >= total {
		t.Fatalf("partial feed kept %d of %d", len(seen), total)
	}
}

func TestWithdrawalsRecorded(t *testing.T) {
	n := testNet(t)
	c := New(PlatformIS, "iso1", 60004, t0)
	c.AddPeer(Peer{AS: 3, Feed: FullFeed})
	c.Attach(n)
	n.Announce(1, pfx)
	n.Withdraw(1, pfx)
	var withdrawals int
	for _, ob := range c.Observations() {
		if ob.Route == nil && ob.Prefix == pfx {
			withdrawals++
		}
	}
	if withdrawals == 0 {
		t.Fatal("no withdrawal recorded")
	}
}

func readAll(t *testing.T, data []byte) []mrt.Record {
	t.Helper()
	r := mrt.NewReader(bytes.NewReader(data))
	var out []mrt.Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
	return out
}

func TestWriteUpdatesMRTRoundTrip(t *testing.T) {
	n := testNet(t)
	c := New(PlatformRIS, "rrc01", 60005, t0)
	c.AddPeer(Peer{AS: 3, Feed: FullFeed})
	c.Attach(n)
	n.Announce(1, pfx, bgp.C(1, 200))
	n.Withdraw(1, pfx)

	var buf bytes.Buffer
	count, err := c.WriteUpdatesMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, buf.Bytes())
	if len(recs) != count || count != len(c.Observations()) {
		t.Fatalf("count=%d recs=%d obs=%d", count, len(recs), len(c.Observations()))
	}
	// First record must decode as an UPDATE with our community.
	var sawAnnounce, sawWithdraw bool
	for _, rec := range recs {
		m := rec.(*mrt.BGP4MPMessage)
		if m.LocalAS != 60005 || m.PeerAS != 3 {
			t.Fatalf("session fields: %+v", m)
		}
		u := m.Message.(*bgp.Update)
		if len(u.NLRI) > 0 {
			sawAnnounce = true
			if u.NLRI[0] != pfx {
				t.Fatalf("nlri=%v", u.NLRI)
			}
			if !u.Attrs.Communities.Has(bgp.C(1, 200)) {
				t.Fatalf("communities=%v", u.Attrs.Communities)
			}
		}
		if len(u.Withdrawn) > 0 {
			sawWithdraw = true
		}
	}
	if !sawAnnounce || !sawWithdraw {
		t.Fatalf("announce=%v withdraw=%v", sawAnnounce, sawWithdraw)
	}
}

func TestWriteRIBSnapshotMRT(t *testing.T) {
	n := testNet(t)
	c := New(PlatformRV, "rv1", 60006, t0)
	c.AddPeer(Peer{AS: 3, Feed: FullFeed})
	c.AddPeer(Peer{AS: 4, Feed: FullFeed})
	c.Attach(n)
	n.Announce(1, pfx, bgp.C(1, 200))
	n.Announce(5, netx.MustPrefix("198.51.100.0/24"))

	var buf bytes.Buffer
	if _, err := c.WriteRIBSnapshotMRT(&buf, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, buf.Bytes())
	pit, ok := recs[0].(*mrt.PeerIndexTable)
	if !ok || len(pit.Peers) != 2 || pit.ViewName != "rv1" {
		t.Fatalf("pit=%+v", recs[0])
	}
	ribs := 0
	entries := 0
	for _, rec := range recs[1:] {
		rb := rec.(*mrt.RIB)
		ribs++
		entries += len(rb.Entries)
		for _, e := range rb.Entries {
			if int(e.PeerIndex) >= len(pit.Peers) {
				t.Fatal("peer index out of range")
			}
		}
	}
	if ribs != 2 {
		t.Fatalf("ribs=%d", ribs)
	}
	// Both peers contribute an entry for each prefix.
	if entries < 3 {
		t.Fatalf("entries=%d", entries)
	}
}

func TestFeedTypeStrings(t *testing.T) {
	for _, f := range []FeedType{FullFeed, PartialFeed, CustomerFeed, FeedType(99)} {
		if f.String() == "" {
			t.Fatal("empty feed string")
		}
	}
}

func TestPeersSortedAndSynthesizedIPs(t *testing.T) {
	c := New(PlatformRIS, "x", 60007, t0)
	c.AddPeer(Peer{AS: 9})
	c.AddPeer(Peer{AS: 3})
	ps := c.Peers()
	if len(ps) != 2 || ps[0].AS != 3 || ps[1].AS != 9 {
		t.Fatalf("peers=%v", ps)
	}
	if !ps[0].IP.IsValid() || ps[0].IP == ps[1].IP {
		t.Fatal("synthesized IPs invalid")
	}
}
