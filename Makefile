# Single entry point shared by CI (.github/workflows/ci.yml) and local
# runs: `make ci` is exactly what the gate executes.

GO      ?= go
# BENCH_OUT names the benchmark artifact; CI overrides per run
# (BENCH_ci.json), committed trajectory points use BENCH_pr<N>.json.
BENCH_OUT ?= BENCH_ci.json

.PHONY: build test race bench bench-smoke benchgate suite-gate lint fmt examples watch-smoke coverage fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark once (smoke depth) and emits the JSON
# artifact for the perf trajectory; use `go test -bench . -benchtime Nx`
# directly for real measurements.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 30m . ./internal/... | tee bench.out
	./ci/benchjson.sh bench.out $(BENCH_OUT)

# benchgate is the perf ratchet: re-measures the gated benchmarks and
# fails on a >15% ns/op or allocs/op regression against
# ci/bench_baseline.json (ci/benchgate.sh -update to re-pin).
benchgate:
	./ci/benchgate.sh

# suite-gate runs the statistical release gates: every registered
# scenario across pinned seeds (suites/release.json, report + provenance
# written to the working directory for the CI artifact upload) plus the
# detector-quality suite under the dictionary arm (suites/detectors.json).
suite-gate:
	$(GO) run ./cmd/suiterun -suite suites/release.json -out .
	$(GO) run ./cmd/suiterun -suite suites/detectors.json -out ''

# examples runs every examples/* binary end to end against a small
# generated topology, so the documented walkthroughs cannot silently rot.
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

# watch-smoke boots wormwatchd, replays an attack scenario through the
# live engine tap, and asserts /alerts serves at least one alert.
watch-smoke:
	./ci/watchsmoke.sh

# coverage enforces the ratchet in ci/coverage.txt (raise-only).
coverage:
	./ci/coverage.sh

# fuzz-smoke runs each native fuzzer for 30s against its checked-in
# seed corpus (testdata/fuzz), catching codec regressions fuzzing finds
# faster than the unit suites.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -fuzz '^FuzzCommunityText$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/bgp
	$(GO) test -fuzz '^FuzzMRTRecord$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/mrt
	$(GO) test -fuzz '^FuzzSuiteFile$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/suite
	$(GO) test -fuzz '^FuzzWALRecord$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/durable

lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: build lint race coverage fuzz-smoke examples watch-smoke bench benchgate suite-gate
