# Single entry point shared by CI (.github/workflows/ci.yml) and local
# runs: `make ci` is exactly what the gate executes.

GO      ?= go
# BENCH_OUT names the benchmark artifact; CI overrides per run
# (BENCH_ci.json), committed trajectory points use BENCH_pr<N>.json.
BENCH_OUT ?= BENCH_ci.json

.PHONY: build test race bench bench-smoke lint fmt examples watch-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark once (smoke depth) and emits the JSON
# artifact for the perf trajectory; use `go test -bench . -benchtime Nx`
# directly for real measurements.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 30m . ./internal/... | tee bench.out
	./ci/benchjson.sh bench.out $(BENCH_OUT)

# examples runs every examples/* binary end to end against a small
# generated topology, so the documented walkthroughs cannot silently rot.
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

# watch-smoke boots wormwatchd, replays an attack scenario through the
# live engine tap, and asserts /alerts serves at least one alert.
watch-smoke:
	./ci/watchsmoke.sh

lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: build lint race examples watch-smoke bench
