// RTBH: the §7.3 / Figure 7 remotely-triggered blackholing attack, run
// through the scenario registry — without and with prefix hijacking —
// against a tiny generated Internet. The hijack variant shows IRR origin
// validation rejecting the announcement until the attacker "updates the
// IRR", exactly as the paper describes.
//
//	go run ./examples/rtbh
package main

import (
	"fmt"
	"log"

	"bgpworms/internal/attack"
	"bgpworms/internal/scenario"
)

func main() {
	fmt.Println("== §7.3: remotely triggered blackholing (scenario registry: rtbh) ==")
	s, _ := scenario.Get("rtbh")
	fmt.Printf("%s (%s, difficulty %s): %s\n\n", s.Title, s.Section, s.Difficulty, s.Summary)

	var results []*attack.Result
	for _, hijack := range []bool{false, true} {
		res, err := scenario.Run("rtbh", &scenario.Context{
			Values: scenario.Values{"hijack": fmt.Sprint(hijack)},
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("-- hijack=%v: success=%v\n", res.Hijack, res.Success)
		for _, e := range res.Evidence {
			fmt.Println("  ", e)
		}
		for _, i := range res.Insights {
			fmt.Println("   insight:", i)
		}
		fmt.Println()
	}

	fmt.Println(attack.RenderTable3(results))
}
