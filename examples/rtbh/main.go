// RTBH: the Figure 7 remotely-triggered blackholing attacks, without and
// with prefix hijacking, including the §6.3 misconfiguration that
// validates origins only after honouring the blackhole community.
//
//	go run ./examples/rtbh
package main

import (
	"fmt"
	"log"
	"net/netip"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

func main() {
	// Figure 7 topology: AS1 (attackee) announces p to AS2 (attacker) and
	// AS3 (community target, offers RTBH via 3:666). AS4 is a bystander
	// behind AS3.
	bh := bgp.C(3, 666)
	build := func(misconfigured bool) *simnet.Network {
		g := topo.NewGraph()
		check(g.AddCustomerProvider(1, 2))
		check(g.AddCustomerProvider(1, 3))
		check(g.AddCustomerProvider(2, 3))
		check(g.AddCustomerProvider(4, 3))
		n := simnet.New(g, func(asn topo.ASN) router.Config {
			cfg := simnet.DefaultConfig(asn)
			if asn == 3 {
				cfg.Catalog = policy.NewCatalog(3).Add(policy.Service{Community: bh, Kind: policy.SvcBlackhole})
				cfg.BlackholeMinLen = 24
				// AS3 validates announcements against IRR route objects:
				// each customer may announce its cone, and p's authorized
				// origin is AS1.
				cfg.ValidateOrigin = true
				cfg.CustomerPrefixes = map[topo.ASN]*policy.PrefixList{
					1: (&policy.PrefixList{}).AddRange(netx.MustPrefix("203.0.113.0/24"), 24, 32),
					2: (&policy.PrefixList{}).
						AddRange(netx.MustPrefix("198.51.100.0/24"), 24, 32).
						AddRange(netx.MustPrefix("203.0.113.0/24"), 24, 32), // AS1 is in AS2's cone
				}
				cfg.OriginAuth = map[netip.Prefix]topo.ASN{
					netx.MustPrefix("203.0.113.0/24"): 1,
				}
				// The §6.3 NANOG-tutorial bug: blackhole before validate.
				cfg.BlackholeBeforeValidate = misconfigured
			}
			return cfg
		})
		return n
	}

	p := netx.MustPrefix("203.0.113.0/24")
	dst := netx.NthAddr(p, 7)

	fmt.Println("== scenario 1: no hijack — attacker is on the announcement path ==")
	n := build(false)
	// AS1 announces p; AS2 (its transit) maliciously adds AS3's blackhole
	// community on the way (modelled as an import map at AS2 adding it).
	n.Router(2).Config().ImportMaps = map[topo.ASN]*policy.RouteMap{
		1: {Terms: []policy.Term{{AddCommunities: []bgp.Community{bh}, Continue: true}}},
	}
	_, err := n.Announce(1, p)
	check(err)
	fmt.Println(n.LookingGlass(3).Show(p))
	fmt.Println("traffic from AS4:", n.Forward(4, dst))

	fmt.Println("\n== scenario 2: hijack, correct config — origin validation saves the day ==")
	n = build(false)
	_, err = n.Announce(1, p)
	check(err)
	// Attacker AS2 originates p (a hijack) tagged with the blackhole
	// community; AS3 validates the origin and rejects.
	_, err = n.Announce(2, p, bh)
	check(err)
	fmt.Println(n.LookingGlass(3).Show(p))
	fmt.Println("traffic from AS4:", n.Forward(4, dst))

	fmt.Println("\n== scenario 3: hijack, misconfigured order — blackhole wins before validation ==")
	n = build(true)
	_, err = n.Announce(1, p)
	check(err)
	_, err = n.Announce(2, p, bh)
	check(err)
	fmt.Println(n.LookingGlass(3).Show(p))
	fmt.Println("traffic from AS4:", n.Forward(4, dst))
	fmt.Println("\n(the same route-map terms in the safe order would have rejected this)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
