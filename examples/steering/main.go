// Steering: the Figure 2 AS-path-prepending scenario — a remote attacker
// triggers AS3's prepend-×3 community service to move AS6's traffic onto
// the path through AS5 (a potential malicious interceptor).
//
//	go run ./examples/steering
package main

import (
	"fmt"
	"log"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

func main() {
	// Figure 2: AS1 -> AS2 -> AS4 -> {AS3, AS5} -> AS6. AS3 offers
	// AS3:103 = "prepend my ASN three times on export".
	prepend := bgp.C(3, 103)
	g := topo.NewGraph()
	for _, e := range [][2]topo.ASN{{1, 2}, {2, 4}, {4, 3}, {4, 5}, {3, 6}, {5, 6}} {
		check(g.AddCustomerProvider(e[0], e[1]))
	}
	n := simnet.New(g, func(asn topo.ASN) router.Config {
		cfg := simnet.DefaultConfig(asn)
		if asn == 3 {
			cfg.Catalog = policy.NewCatalog(3).Add(policy.Service{
				Community: prepend, Kind: policy.SvcPrepend, Param: 3,
			})
		}
		return cfg
	})

	p := netx.MustPrefix("203.0.113.0/24")
	dst := netx.NthAddr(p, 1)

	fmt.Println("== baseline: AS1 announces p plainly ==")
	_, err := n.Announce(1, p)
	check(err)
	fmt.Println(n.LookingGlass(6).Show(p))
	fmt.Println("AS6 -> p:", n.Forward(6, dst))

	fmt.Println("\n== attack: AS1/AS2 tag the announcement with AS3:103 ==")
	// The attacker is AS2 in the paper's telling; tagging at origin is
	// equivalent since AS2 forwards communities.
	_, err = n.Withdraw(1, p)
	check(err)
	_, err = n.Announce(1, p, prepend)
	check(err)
	rt, _ := n.LookingGlass(6).Route(p)
	fmt.Println(n.LookingGlass(6).Show(p))
	fmt.Println("AS6 -> p:", n.Forward(6, dst))
	if rt.ASPath.First() == 5 {
		fmt.Println("\ntraffic now crosses AS5 — the interceptor sees everything")
	}

	// The prepended path is visible at AS6 via AS3's neighbors.
	adv, ok := n.Router(3).Advertised(6, p)
	if ok {
		fmt.Printf("AS3's advertisement to AS6 carries path [%s]\n", adv.ASPath)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
