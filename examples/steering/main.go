// Steering: the §7.4 / Figure 2 AS-path-prepending attacks, run through
// the scenario registry against a tiny generated Internet — the classic
// prepend steering (a remote community lengthens paths through the
// target) and the selective variant (only flows crossing the target
// move; bystanders keep their paths).
//
//	go run ./examples/steering
package main

import (
	"fmt"
	"log"

	"bgpworms/internal/attack"
	"bgpworms/internal/scenario"
)

func main() {
	var results []*attack.Result
	for _, name := range []string{"steering-prepend", "selective-prepend"} {
		s, _ := scenario.Get(name)
		fmt.Printf("== %s: %s (%s, difficulty %s) ==\n", s.Section, s.Title, name, s.Difficulty)
		fmt.Println(s.Summary)
		res, err := scenario.Run(name, nil)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		for _, e := range res.Evidence {
			fmt.Println("  ", e)
		}
		for _, i := range res.Insights {
			fmt.Println("   insight:", i)
		}
		fmt.Println()
	}

	fmt.Println(attack.RenderTable3(results))
}
