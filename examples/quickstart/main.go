// Quickstart: build a five-AS topology, announce a tagged prefix, watch
// the community propagate, and inspect routing from looking glasses and
// the data plane.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

func main() {
	// Topology (Figure 1 style): AS1 is a stub customer of AS2; AS2 buys
	// from tier-1s AS10 and AS20, which peer; AS30 is another stub under
	// AS20.
	g := topo.NewGraph()
	check(g.AddCustomerProvider(1, 2))
	check(g.AddCustomerProvider(2, 10))
	check(g.AddCustomerProvider(2, 20))
	check(g.AddPeering(10, 20))
	check(g.AddCustomerProvider(30, 20))

	// Default config: JunOS-style forward-all community handling.
	net := simnet.New(g, nil)

	// AS1 announces its prefix, tagged "customer prefix" (AS1:200).
	prefix := netx.MustPrefix("203.0.113.0/24")
	steps, err := net.Announce(1, prefix, bgp.C(1, 200))
	check(err)
	fmt.Printf("converged after %d update deliveries\n\n", steps)

	// Every AS now has a route; the origin community traveled the whole
	// way because nobody filters.
	for _, asn := range net.ASes() {
		fmt.Println(net.LookingGlass(asn).Show(prefix))
	}

	// Data plane: AS30 reaches AS1 through AS20 -> AS2 -> AS1.
	dst := netx.NthAddr(prefix, 1)
	tr := net.Forward(30, dst)
	fmt.Printf("\ntraceroute from AS30 to %s: %s\n", dst, tr)
	fmt.Printf("ping: %v\n", net.Ping(30, dst))

	// Withdraw and confirm the network converges back.
	_, err = net.Withdraw(1, prefix)
	check(err)
	if _, ok := net.LookingGlass(30).Route(prefix); !ok {
		fmt.Println("\nafter withdrawal: route gone everywhere")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
