// IXP route manipulation: the §7.5 / Figure 9 scenario, run through the
// scenario registry against a tiny generated Internet — conflicting
// announce-to / don't-announce-to communities at a route server whose
// published evaluation order handles suppression first, so an attacker
// can veto another member's route.
//
//	go run ./examples/ixp-manipulation
package main

import (
	"fmt"
	"log"

	"bgpworms/internal/attack"
	"bgpworms/internal/scenario"
)

func main() {
	s, _ := scenario.Get("route-manipulation")
	fmt.Printf("== %s: %s (difficulty %s) ==\n", s.Section, s.Title, s.Difficulty)
	fmt.Println(s.Summary)
	fmt.Println()

	var results []*attack.Result
	for _, hijack := range []bool{false, true} {
		res, err := scenario.Run("route-manipulation", &scenario.Context{
			Values: scenario.Values{"hijack": fmt.Sprint(hijack)},
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("-- hijack=%v: success=%v\n", res.Hijack, res.Success)
		for _, e := range res.Evidence {
			fmt.Println("  ", e)
		}
		for _, i := range res.Insights {
			fmt.Println("   insight:", i)
		}
		fmt.Println()
	}

	fmt.Println(attack.RenderTable3(results))
}
