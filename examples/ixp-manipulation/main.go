// IXP route manipulation: the Figure 9 scenario — conflicting
// announce-to / don't-announce-to communities at a route server whose
// published evaluation order handles suppression first, so an attacker
// can veto another member's route.
//
//	go run ./examples/ixp-manipulation
package main

import (
	"fmt"
	"log"

	"bgpworms/internal/ixp"
	"bgpworms/internal/netx"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

func main() {
	// Three IXP members (AS100 announces, AS400 is the attackee) and a
	// transparent route server AS900.
	g := topo.NewGraph()
	for _, m := range []topo.ASN{100, 200, 400} {
		g.AddAS(m)
	}
	n := simnet.New(g, nil)
	rs := ixp.NewRouteServer(900, ixp.SuppressFirst)
	for _, m := range []topo.ASN{100, 200, 400} {
		check(rs.AddMember(m))
	}
	check(rs.Attach(n))

	p := netx.MustPrefix("203.0.113.0/24")

	fmt.Println("== step 1: AS100 selectively announces p to AS400 (community 900:400) ==")
	_, err := n.Announce(100, p, rs.AnnounceToCommunity(400))
	check(err)
	fmt.Println(n.LookingGlass(400).Show(p))
	if rt, ok := n.LookingGlass(400).Route(p); ok && !rt.ASPath.Contains(900) {
		fmt.Println("note: the route server stays off the AS path (its communities are 'off-path')")
	}

	fmt.Println("\n== step 2: the conflicting 0:400 ('do not announce to AS400') is added ==")
	_, err = n.Withdraw(100, p)
	check(err)
	_, err = n.Announce(100, p, rs.AnnounceToCommunity(400), rs.SuppressToCommunity(400))
	check(err)
	fmt.Println(n.LookingGlass(400).Show(p))
	fmt.Printf("route server evaluation order: %s -> suppression wins the conflict\n", rs.Order())

	fmt.Println("\n== counterfactual: an announce-first route server ==")
	g2 := topo.NewGraph()
	for _, m := range []topo.ASN{100, 200, 400} {
		g2.AddAS(m)
	}
	n2 := simnet.New(g2, nil)
	rs2 := ixp.NewRouteServer(900, ixp.AnnounceFirst)
	for _, m := range []topo.ASN{100, 200, 400} {
		check(rs2.AddMember(m))
	}
	check(rs2.Attach(n2))
	_, err = n2.Announce(100, p, rs2.AnnounceToCommunity(400), rs2.SuppressToCommunity(400))
	check(err)
	fmt.Println(n2.LookingGlass(400).Show(p))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
