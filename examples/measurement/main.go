// Measurement: run the §4 passive pipeline end to end on a freshly
// generated Internet — through real MRT bytes, exactly like consuming
// RIS/RouteViews archives.
//
//	go run ./examples/measurement
package main

import (
	"bytes"
	"fmt"
	"log"

	"bgpworms/internal/core"
	"bgpworms/internal/gen"
	"bgpworms/internal/stats"
)

func main() {
	fmt.Println("building a tiny Internet with four collector platforms...")
	w, err := gen.Build(gen.Tiny())
	check(err)
	rep, err := w.RunChurn()
	check(err)
	fmt.Printf("churn: %d re-announcements, %d RTBH episodes\n\n", rep.Reannouncements, len(rep.RTBH))

	// Serialize every collector's archive to MRT and parse it back — the
	// pipeline consumes only the wire format.
	ds := &core.Dataset{}
	for _, c := range w.Collectors {
		var buf bytes.Buffer
		if _, err := c.WriteUpdatesMRT(&buf); err != nil {
			log.Fatal(err)
		}
		part, err := core.ReadMRTUpdates(string(c.Platform), c.Name, &buf)
		check(err)
		ds.Merge(part)
	}
	fmt.Printf("parsed %d updates from %d collectors\n\n", len(ds.Updates), len(ds.Collectors))

	fmt.Println(core.RenderTable1(core.Table1(ds)))
	fmt.Println(core.RenderTable2(core.Table2(ds)))

	pa := core.AnalyzePropagation(ds, w.Registry.All())
	all, bh := pa.Figure5a()
	fmt.Println(core.RenderFigure5a(all, bh))

	tp := core.TransitPropagators(ds)
	fmt.Printf("transit ASes forwarding foreign communities: %d of %d (%s)\n",
		tp.Propagators, tp.TransitASes, stats.Pct(tp.Propagators, tp.TransitASes))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
