package bgpworms

// The benchmark harness: one benchmark per table and figure in the
// paper's evaluation, plus ablations for the engine's design choices
// (chunked folds, scheduling dedup, parallel rounds). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates the corresponding rows/series; pass -v to
// see them via b.Logf on the first iteration.

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"runtime"
	"sync"
	"testing"

	"bgpworms/internal/attack"
	"bgpworms/internal/bgp"
	"bgpworms/internal/core"
	"bgpworms/internal/gen"
	"bgpworms/internal/netx"
	"bgpworms/internal/obs"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/serve"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
	"bgpworms/internal/watch"
)

func simnetNew(g *topo.Graph) *simnet.Network { return simnet.New(g, nil) }

var (
	fixOnce sync.Once
	fixLab  *attack.Lab
	fixDS   *core.Dataset
	fixErr  error
)

// fixture builds the benchmark world once: a Small-scale Internet with a
// month of churn, both injection platforms, and a dataset snapshot taken
// before any attack runs.
func fixture(b *testing.B) (*attack.Lab, *core.Dataset) {
	fixOnce.Do(func() {
		lab, err := attack.NewLab(gen.Small(), 48)
		if err != nil {
			fixErr = err
			return
		}
		if _, err := lab.W.RunChurn(); err != nil {
			fixErr = err
			return
		}
		fixLab = lab
		fixDS = core.FromCollectors(lab.W.Collectors)
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixLab, fixDS
}

func logOnce(b *testing.B, i int, s string) {
	if i == 0 {
		b.Logf("\n%s", s)
	}
}

// BenchmarkTable1DatasetOverview regenerates Table 1: the per-platform
// dataset overview (messages, prefixes, collectors, peers, communities,
// AS roles).
func BenchmarkTable1DatasetOverview(b *testing.B) {
	_, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := core.Table1(ds)
		if len(rows) != 5 {
			b.Fatalf("rows=%d", len(rows))
		}
		logOnce(b, i, core.RenderTable1(rows))
	}
}

// BenchmarkTable2CommunityASes regenerates Table 2: ASes observed in
// communities, split into on-path / off-path / private.
func BenchmarkTable2CommunityASes(b *testing.B) {
	_, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := core.Table2(ds)
		if rows[len(rows)-1].Total == 0 {
			b.Fatal("empty table 2")
		}
		logOnce(b, i, core.RenderTable2(rows))
	}
}

// BenchmarkFigure3UseOverTime regenerates the Figure 3 time series:
// community use 2010–2018 (unique ASes, unique communities, absolute
// communities, table entries), one synthetic Internet per year.
func BenchmarkFigure3UseOverTime(b *testing.B) {
	years := []int{2010, 2012, 2014, 2016, 2018}
	for i := 0; i < b.N; i++ {
		pts, err := gen.Evolution(gen.Tiny(), years, func(w *gen.Internet) (int, int, int, int) {
			return core.EvolutionMetrics(core.FromCollectors(w.Collectors))
		})
		if err != nil {
			b.Fatal(err)
		}
		if pts[len(pts)-1].UniqueCommunities <= pts[0].UniqueCommunities {
			b.Fatal("community use must grow over time")
		}
		if i == 0 {
			for _, p := range pts {
				b.Logf("year=%d uniqueASes=%d uniqueComms=%d absolute=%d tableEntries=%d",
					p.Year, p.UniqueASes, p.UniqueCommunities, p.AbsoluteCommunities, p.TableEntries)
			}
		}
	}
}

// BenchmarkFigure4aUpdatesWithCommunities regenerates Figure 4a: the
// per-collector fraction of updates carrying communities, per platform.
func BenchmarkFigure4aUpdatesWithCommunities(b *testing.B) {
	_, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := core.Figure4a(ds)
		if len(fr) == 0 {
			b.Fatal("no collectors")
		}
		share := core.OverallCommunityShare(ds)
		b.ReportMetric(share*100, "%updates_w_comm")
		logOnce(b, i, core.RenderFigure4a(fr))
	}
}

// BenchmarkFigure4bCommunitiesPerUpdate regenerates Figure 4b: ECDFs of
// communities per update and associated ASes per update.
func BenchmarkFigure4bCommunitiesPerUpdate(b *testing.B) {
	_, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := core.ComputeFigure4b(ds)
		if f.CommunitiesPerUpdate.Len() == 0 {
			b.Fatal("empty distribution")
		}
		logOnce(b, i, core.RenderFigure4b(f))
	}
}

// BenchmarkFigure5aPropagationDistance regenerates Figure 5a: ECDF of
// community propagation hop counts, all vs blackholing communities.
func BenchmarkFigure5aPropagationDistance(b *testing.B) {
	lab, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := core.AnalyzePropagation(ds, lab.W.Registry.All())
		all, bh := pa.Figure5a()
		if all.Len() == 0 {
			b.Fatal("no distances")
		}
		b.ReportMetric(all.Mean(), "mean_hops_all")
		if bh.Len() > 0 {
			b.ReportMetric(bh.Mean(), "mean_hops_blackhole")
		}
		logOnce(b, i, core.RenderFigure5a(all, bh))
	}
}

// BenchmarkFigure5bRelativeDistance regenerates Figure 5b: relative
// propagation distance by AS-path length.
func BenchmarkFigure5bRelativeDistance(b *testing.B) {
	lab, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := core.AnalyzePropagation(ds, lab.W.Registry.All())
		m := pa.Figure5b(3, 10)
		if len(m) == 0 {
			b.Fatal("no groups")
		}
		logOnce(b, i, core.RenderFigure5b(m))
	}
}

// BenchmarkFigure5cTopValues regenerates Figure 5c: top-10 community
// values off-path vs on-path.
func BenchmarkFigure5cTopValues(b *testing.B) {
	lab, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := core.AnalyzePropagation(ds, lab.W.Registry.All())
		off, on := pa.Figure5c(10)
		if len(on) == 0 {
			b.Fatal("no on-path values")
		}
		logOnce(b, i, core.RenderFigure5c(off, on))
	}
}

// BenchmarkTransitPropagators regenerates the §4.3 headline: the count
// and share of transit ASes relaying foreign communities.
func BenchmarkTransitPropagators(b *testing.B) {
	_, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.TransitPropagators(ds)
		if rep.Propagators == 0 {
			b.Fatal("no propagators")
		}
		b.ReportMetric(rep.Fraction()*100, "%transit_propagating")
	}
}

// BenchmarkFigure6FilterInference regenerates Figure 6: per-edge
// forwarding/filtering indication counts, the summary percentages, and
// the log-log bins of Figure 6b.
func BenchmarkFigure6FilterInference(b *testing.B) {
	lab, ds := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fi := core.InferFiltering(ds)
		s := fi.Summarize(10)
		if s.TotalEdges == 0 {
			b.Fatal("no edges")
		}
		bins := fi.Hexbin(1, 4)
		if len(bins) == 0 {
			b.Fatal("no bins")
		}
		_ = fi.ByRelationship(lab.W.Graph)
		logOnce(b, i, core.RenderFilterSummary(s))
	}
}

// BenchmarkLabVendorMatrix reproduces the §6.1 lab findings: JunOS
// forwards communities by default, IOS only with send-community, and IOS
// caps configuration-added communities at 32.
func BenchmarkLabVendorMatrix(b *testing.B) {
	pfx := netx.MustPrefix("203.0.113.0/24")
	for i := 0; i < b.N; i++ {
		for _, vendor := range []router.Vendor{router.VendorJuniper, router.VendorCisco} {
			for _, send := range []bool{false, true} {
				cfg := router.Config{ASN: 65001, Vendor: vendor}
				if send {
					cfg.SendCommunity = map[topo.ASN]bool{64501: true}
				}
				r := router.New(cfg)
				r.AddNeighbor(64500, topo.RelCustomer)
				r.AddNeighbor(64501, topo.RelCustomer)
				in := policy.NewLocalRoute(pfx)
				in.ASPath = bgp.Path(64500, 1)
				in.Communities = bgp.NewCommunitySet(bgp.C(7, 7))
				r.ReceiveUpdate(64500, in)
				out, d := r.ExportTo(64501, pfx)
				if d != router.ExportSent {
					b.Fatal(d)
				}
				kept := out.Communities.Has(bgp.C(7, 7))
				wantKept := vendor == router.VendorJuniper || send
				if kept != wantKept {
					b.Fatalf("vendor=%v send=%v kept=%v", vendor, send, kept)
				}
			}
		}
	}
}

// BenchmarkSec72PropagationCheck reproduces §7.2: benign-community
// propagation from both injection platforms.
func BenchmarkSec72PropagationCheck(b *testing.B) {
	lab, _ := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := lab.PropagationCheck(lab.Research)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := lab.PropagationCheck(lab.Peering)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r1.ForwardingTransits), "research_transits")
		b.ReportMetric(float64(r2.ForwardingTransits), "peering_transits")
		logOnce(b, i, attack.RenderPropagation([]*attack.PropagationReport{r1, r2}))
	}
}

// BenchmarkSec73RTBH reproduces §7.3: remote blackholing without and with
// hijack.
func BenchmarkSec73RTBH(b *testing.B) {
	lab, _ := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, hijack := range []bool{false, true} {
			res, err := lab.RunRTBH(hijack)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Success {
				b.Fatalf("RTBH hijack=%v failed: %v", hijack, res.Evidence)
			}
		}
	}
}

// BenchmarkSec74Steering reproduces §7.4: local-pref and prepending
// steering attacks (graded hard; success depends on customer-chain
// targets existing).
func BenchmarkSec74Steering(b *testing.B) {
	lab, _ := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp, err := lab.RunSteeringLocalPref(false)
		if err != nil {
			b.Fatal(err)
		}
		pp, err := lab.RunSteeringPrepend(false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("local-pref success=%v; prepend success=%v", lp.Success, pp.Success)
		}
	}
}

// BenchmarkSec75RouteManipulation reproduces §7.5: conflicting
// announce/suppress communities at the IXP route server.
func BenchmarkSec75RouteManipulation(b *testing.B) {
	lab, _ := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lab.RunRouteManipulation(false)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success {
			b.Fatalf("manipulation failed: %v", res.Evidence)
		}
	}
}

// BenchmarkTable3AttackMatrix regenerates Table 3: the full scenario ×
// hijack matrix with difficulty grades.
func BenchmarkTable3AttackMatrix(b *testing.B) {
	lab, _ := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := lab.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 8 {
			b.Fatalf("rows=%d", len(results))
		}
		logOnce(b, i, attack.RenderTable3(results))
	}
}

// BenchmarkSec76BlackholeSweep reproduces §7.6: the automated sweep over
// candidate blackhole communities with per-VP diffing and stability
// re-run.
func BenchmarkSec76BlackholeSweep(b *testing.B) {
	lab, _ := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := lab.BlackholeSweep(lab.W.Registry.All())
		if err != nil {
			b.Fatal(err)
		}
		ind := rep.InducingCommunities()
		b.ReportMetric(float64(len(ind)), "inducing_communities")
		b.ReportMetric(float64(len(rep.AffectedVPs())), "affected_vps")
		logOnce(b, i, attack.RenderSweep(rep))
	}
}

// --- Pipeline scaling benches (PR 1's tentpole) ---

// BenchmarkPipelineFullAnalysis is the committed serial-vs-parallel
// comparison: the per-figure serial path (each analysis rescans the
// dataset on one worker, the pre-pipeline code shape) against the fused
// sharded pipeline at one worker and at GOMAXPROCS workers. Outputs are
// bit-identical across all three (asserted by the core determinism
// tests); only the wall clock differs.
func BenchmarkPipelineFullAnalysis(b *testing.B) {
	lab, ds := fixture(b)
	known := lab.W.Registry.All()
	runAll := func(p *core.Pipeline) {
		p.Table1(ds)
		p.Table2(ds)
		p.Figure4a(ds)
		p.OverallCommunityShare(ds)
		p.ComputeFigure4b(ds)
		pa := p.AnalyzePropagation(ds, known)
		pa.Figure5a()
		p.TransitPropagators(ds)
		p.InferFiltering(ds)
	}
	b.Run("per-figure/workers=1", func(b *testing.B) {
		p := core.NewPipeline(1)
		for i := 0; i < b.N; i++ {
			runAll(p)
		}
	})
	b.Run("fused/workers=1", func(b *testing.B) {
		p := core.NewPipeline(1)
		for i := 0; i < b.N; i++ {
			if a := p.Analyze(ds, known); a.Transit.Propagators == 0 {
				b.Fatal("no propagators")
			}
		}
	})
	b.Run(fmt.Sprintf("fused/workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		p := core.NewPipeline(runtime.GOMAXPROCS(0))
		for i := 0; i < b.N; i++ {
			if a := p.Analyze(ds, known); a.Transit.Propagators == 0 {
				b.Fatal("no propagators")
			}
		}
	})
}

// BenchmarkPipelinePerFigureWorkers scales the individual heavy
// analyses across worker counts.
func BenchmarkPipelinePerFigureWorkers(b *testing.B) {
	lab, ds := fixture(b)
	known := lab.W.Registry.All()
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		p := core.NewPipeline(w)
		b.Run(fmt.Sprintf("table1/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Table1(ds)
			}
		})
		b.Run(fmt.Sprintf("fig5/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.AnalyzePropagation(ds, known)
			}
		})
		b.Run(fmt.Sprintf("fig6/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.InferFiltering(ds)
			}
		})
	}
}

// BenchmarkSimnetEngines compares the three propagation engines. The
// toy subbenches announce 80 prefixes over a 100-AS mesh; the medium
// subbenches build and churn a full gen.Medium world (~1k ASes, ~5M
// deliveries) under the rounds oracle and the delta engine — the
// committed delta-vs-rounds comparison the ISSUE-5 acceptance criterion
// reads (delta >= 3x rounds on medium; see BENCH_pr5.json). Both
// parallel engines produce bit-identical tap streams and RIBs
// (TestDifferentialEngines), so only the wall clock differs.
func BenchmarkSimnetEngines(b *testing.B) {
	build := func() *topo.Graph {
		g := topo.NewGraph()
		for i := topo.ASN(1); i <= 4; i++ {
			for j := i + 1; j <= 4; j++ {
				g.AddPeering(i, j)
			}
		}
		for i := topo.ASN(10); i < 26; i++ {
			g.AddCustomerProvider(i, 1+(i%4))
			g.AddCustomerProvider(i, 1+((i+1)%4))
		}
		for i := topo.ASN(100); i < 180; i++ {
			g.AddCustomerProvider(i, 10+(i%16))
		}
		return g
	}
	announce := func(b *testing.B, n *simnet.Network) {
		for i := topo.ASN(100); i < 180; i++ {
			p := netip.PrefixFrom(netx.V4(10, byte(i>>8), byte(i), 0), 24)
			if _, err := n.Announce(i, p, bgp.C(uint16(i), 100)); err != nil {
				b.Fatal(err)
			}
		}
	}
	toy := func(engine simnet.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := simnet.New(build(), nil)
				n.SetEngine(engine)
				n.SetWorkers(runtime.GOMAXPROCS(0))
				announce(b, n)
			}
		}
	}
	b.Run("serial/toy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			announce(b, simnet.New(build(), nil))
		}
	})
	b.Run("rounds/toy", toy(simnet.EngineRounds))
	b.Run("delta/toy", toy(simnet.EngineDelta))

	medium := func(engine string) func(b *testing.B) {
		return func(b *testing.B) {
			// Normalize the heap so neither engine pays for the other's
			// leftovers (single-iteration builds are GC-sensitive).
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := gen.Medium()
				p.Engine = engine
				p.Workers = runtime.GOMAXPROCS(0)
				w, err := gen.Build(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.RunChurn(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(w.Net.Steps()), "deliveries")
			}
		}
	}
	b.Run("rounds/medium", medium("rounds"))
	b.Run("delta/medium", medium("delta"))
}

// BenchmarkLargeWorldBuild builds and converges the paper-scale presets
// under the delta engine: large (~10k ASes) and internet (~63k ASes,
// the study's April 2018 AS count, degree-skewed). One benchtime-1x
// iteration in the CI bench job is the standing proof that a full
// internet-scale world builds and converges on the CI box.
func BenchmarkLargeWorldBuild(b *testing.B) {
	for _, scale := range []string{"large", "internet"} {
		b.Run(scale, func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := gen.Preset(scale)
				if err != nil {
					b.Fatal(err)
				}
				p.Engine = "delta"
				p.Workers = runtime.GOMAXPROCS(0)
				w, err := gen.Build(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.RunChurn(); err != nil {
					b.Fatal(err)
				}
				if got := w.Graph.NumASes(); got < 10000 {
					b.Fatalf("ases=%d, want a paper-scale world", got)
				}
				b.ReportMetric(float64(w.Graph.NumASes()), "ases")
				b.ReportMetric(float64(w.Net.Steps()), "deliveries")
				b.ReportMetric(float64(len(w.AllPrefixes())), "prefixes")
			}
		})
	}
}

// --- Streaming detection benches (PR 3's tentpole) ---

// watchFeed builds a synthetic update cycle exercising the watch hot
// path: many prefixes, realistic paths, community churn, and a sprinkle
// of blackhole tags and withdrawals so every detector runs its full
// logic.
func watchFeed(n int) []watch.Event {
	events := make([]watch.Event, n)
	for i := range events {
		pfxIdx := i % 1024
		peer := uint32(100 + i%7)
		mid := uint32(1000 + i%29)
		origin := uint32(10000 + pfxIdx)
		ev := watch.Event{
			PeerAS: peer,
			Prefix: netip.PrefixFrom(netx.V4(10, byte(pfxIdx>>8), byte(pfxIdx), 0), 24),
			ASPath: []uint32{peer, mid, origin},
		}
		switch i % 16 {
		case 13:
			ev.Withdraw, ev.ASPath = true, nil
		case 14:
			ev.Communities = bgp.NewCommunitySet(bgp.C(uint16(origin), 100), bgp.C(uint16(mid), 666))
		default:
			ev.Communities = bgp.NewCommunitySet(bgp.C(uint16(origin), 100), bgp.C(uint16(mid), 1000))
		}
		events[i] = ev
	}
	return events
}

// BenchmarkWatchIngest measures the streaming detection engine's
// sustained ingest throughput with every builtin detector running: one
// op pushes a block of 1024 events through Ingest (the blocking path),
// and the updates/sec metric is the number the wormwatchd sizing claim
// rests on (>= 1M updates/sec; see BENCH_pr3.json).
func BenchmarkWatchIngest(b *testing.B) {
	events := watchFeed(1024)
	e := watch.NewEngine(watch.Config{})
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range events {
			e.Ingest(events[j])
		}
	}
	e.Flush()
	b.ReportMetric(float64(b.N*len(events))/b.Elapsed().Seconds(), "updates/sec")
	b.StopTimer()
	if st := e.Stats(); st.Dropped != 0 || st.Alerts == 0 {
		b.Fatalf("stats=%+v", st)
	}
}

// BenchmarkWatchIngestShards scales the same feed across shard counts
// (the alert set is invariant; only wall clock moves).
func BenchmarkWatchIngestShards(b *testing.B) {
	events := watchFeed(1024)
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := watch.NewEngine(watch.Config{Shards: shards})
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range events {
					e.Ingest(events[j])
				}
			}
			e.Flush()
			b.ReportMetric(float64(b.N*len(events))/b.Elapsed().Seconds(), "updates/sec")
		})
	}
}

// BenchmarkWatchScenarioReplay measures the end-to-end detect-what-you-
// attack loop: build a world, run the RTBH attack with a lossless
// engine tap observing every delivery, and score the detectors.
func BenchmarkWatchScenarioReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := watch.EvalScenario("rtbh", nil, watch.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Recall != 1 {
			b.Fatalf("recall=%v", rep.Recall)
		}
		b.ReportMetric(float64(rep.Stats.Ingested), "events")
		logOnce(b, i, watch.RenderEval(rep))
	}
}

// --- Dictionary-inference benches (PR 4's tentpole) ---

// semanticsFeed builds a synthetic observation mix exercising the full
// fold: informational tags, blackhole host routes, prepend evidence,
// steering shapes, private tags — the same population shape as
// watchFeed, shifted to the semantics Observation type.
func semanticsFeed(n int) []semantics.Observation {
	obs := make([]semantics.Observation, n)
	for i := range obs {
		pfxIdx := i % 1024
		peer := uint32(100 + i%7)
		mid := uint32(1000 + i%29)
		origin := uint32(10000 + pfxIdx)
		ob := semantics.Observation{
			PeerAS: peer,
			Prefix: netip.PrefixFrom(netx.V4(10, byte(pfxIdx>>8), byte(pfxIdx), 0), 24),
			ASPath: []uint32{peer, mid, origin},
		}
		switch i % 16 {
		case 13:
			ob.Prefix = netip.PrefixFrom(netx.V4(10, byte(pfxIdx>>8), byte(pfxIdx), 9), 32)
			ob.Communities = bgp.NewCommunitySet(bgp.C(uint16(mid), 666))
		case 14:
			ob.ASPath = []uint32{peer, mid, mid, origin}
			ob.Communities = bgp.NewCommunitySet(bgp.C(uint16(mid), 101))
		default:
			ob.Communities = bgp.NewCommunitySet(bgp.C(uint16(origin), 100), bgp.C(uint16(mid), 1000))
		}
		obs[i] = ob
	}
	return obs
}

// BenchmarkSemanticsIngest measures the dictionary engine's sustained
// fold throughput: one op pushes a block of 1024 observations through
// Ingest, and the obs/sec metric is the number the ISSUE-4 sizing claim
// rests on (>= 1M observations/sec; see BENCH_pr4.json).
func BenchmarkSemanticsIngest(b *testing.B) {
	feed := semanticsFeed(1024)
	e := semantics.NewEngine(semantics.Config{})
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range feed {
			e.Ingest(feed[j])
		}
	}
	e.Flush()
	b.ReportMetric(float64(b.N*len(feed))/b.Elapsed().Seconds(), "obs/sec")
	b.StopTimer()
	if snap := e.Snapshot(); snap.Len() == 0 {
		b.Fatal("empty dictionary")
	}
}

// BenchmarkSemanticsIngestWorkers scales the same feed across worker
// counts (the snapshot is invariant; only wall clock moves).
func BenchmarkSemanticsIngestWorkers(b *testing.B) {
	feed := semanticsFeed(1024)
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := semantics.NewEngine(semantics.Config{Workers: workers})
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range feed {
					e.Ingest(feed[j])
				}
			}
			e.Flush()
			b.ReportMetric(float64(b.N*len(feed))/b.Elapsed().Seconds(), "obs/sec")
		})
	}
}

// BenchmarkClassify measures the fused snapshot pass — partial-merge
// plus per-entry classification — over a populated engine. Each op
// ingests one observation to invalidate the version cache, so the
// measured work is a full merge+classify of the dictionary.
func BenchmarkClassify(b *testing.B) {
	feed := semanticsFeed(64 * 1024)
	e := semantics.NewEngine(semantics.Config{})
	defer e.Close()
	for i := range feed {
		e.Ingest(feed[i])
	}
	e.Flush()
	entries := e.Snapshot().Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest(feed[i%len(feed)])
		if e.Snapshot().Len() == 0 {
			b.Fatal("empty dictionary")
		}
	}
	b.ReportMetric(float64(entries)*float64(b.N)/b.Elapsed().Seconds(), "entries_classified/sec")
}

// BenchmarkWatchIngestWithSemantics re-runs the watch ingest hot path
// in the full wormwatchd steady state: dictionary mirroring on, and
// the dict-aware detectors consulting a snapshot already trained on
// the same feed (so their lookups mostly hit, as in a warmed daemon).
func BenchmarkWatchIngestWithSemantics(b *testing.B) {
	events := watchFeed(1024)
	sem := semantics.NewEngine(semantics.Config{})
	defer sem.Close()
	holder := &semantics.Holder{}
	// Warm the dictionary exactly as the daemon's heartbeat would.
	trainer := watch.NewEngine(watch.Config{Semantics: sem})
	for j := range events {
		trainer.Ingest(events[j])
	}
	trainer.Close()
	holder.Store(sem.Snapshot())
	e := watch.NewEngine(watch.Config{Semantics: sem, Dict: holder})
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range events {
			e.Ingest(events[j])
		}
	}
	e.Flush()
	b.ReportMetric(float64(b.N*len(events))/b.Elapsed().Seconds(), "updates/sec")
}

// --- Ablation benches (engine design choices) ---

// BenchmarkAblationTrieVsLinear compares the FIB's longest-prefix-match
// trie with a naive linear scan.
func BenchmarkAblationTrieVsLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var prefixes []netip.Prefix
	tr := netx.NewTrie[int]()
	for i := 0; i < 5000; i++ {
		p := netip.PrefixFrom(netx.V4(byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0), 8+rng.Intn(17)).Masked()
		if tr.Insert(p, i) {
			prefixes = append(prefixes, p)
		}
	}
	addrs := make([]netip.Addr, 512)
	for i := range addrs {
		addrs[i] = netx.V4(byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
	}
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Lookup(addrs[i%len(addrs)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := addrs[i%len(addrs)]
			best := netip.Prefix{}
			for _, p := range prefixes {
				if p.Contains(a) && p.Bits() > best.Bits() {
					best = p
				}
			}
		}
	})
}

// BenchmarkAblationTaggerInference compares the paper's conservative
// nearest-observer tagger attribution with naive origin attribution:
// origin attribution systematically inflates distances.
func BenchmarkAblationTaggerInference(b *testing.B) {
	lab, ds := fixture(b)
	b.Run("conservative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pa := core.AnalyzePropagation(ds, lab.W.Registry.All())
			all, _ := pa.Figure5a()
			b.ReportMetric(all.Mean(), "mean_hops")
		}
	})
	b.Run("origin-attribution", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum, n float64
			for _, u := range ds.Announcements() {
				if len(u.Communities) == 0 {
					continue
				}
				path := u.StrippedPath()
				for range u.Communities {
					// Attribute every community to the origin.
					sum += float64(len(path))
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(sum/n, "mean_hops")
			}
		}
	})
}

// BenchmarkAblationCommunitySet compares the sorted-slice CommunitySet
// with a map-based set for the typical small community counts.
func BenchmarkAblationCommunitySet(b *testing.B) {
	vals := make([]bgp.Community, 12)
	for i := range vals {
		vals[i] = bgp.C(uint16(i*37), uint16(i))
	}
	b.Run("sorted-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s bgp.CommunitySet
			for _, v := range vals {
				s = s.Add(v)
			}
			for _, v := range vals {
				if !s.Has(v) {
					b.Fatal("missing")
				}
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := make(map[bgp.Community]bool, len(vals))
			for _, v := range vals {
				m[v] = true
			}
			for _, v := range vals {
				if !m[v] {
					b.Fatal("missing")
				}
			}
		}
	})
}

// BenchmarkAblationConvergence compares deduplicated work-queue
// scheduling against naive re-enqueueing during convergence.
func BenchmarkAblationConvergence(b *testing.B) {
	pfx := netx.MustPrefix("203.0.113.0/24")
	build := func() *topo.Graph {
		g := topo.NewGraph()
		// A 3-tier, 40-AS topology with multihoming.
		for i := topo.ASN(1); i <= 4; i++ {
			for j := i + 1; j <= 4; j++ {
				g.AddPeering(i, j)
			}
		}
		for i := topo.ASN(10); i < 22; i++ {
			g.AddCustomerProvider(i, 1+(i%4))
			g.AddCustomerProvider(i, 1+((i+1)%4))
		}
		for i := topo.ASN(100); i < 124; i++ {
			g.AddCustomerProvider(i, 10+(i%12))
		}
		return g
	}
	for _, mode := range []struct {
		name  string
		dedup bool
	}{{"dedup", true}, {"naive", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := simnetNew(build())
				n.SetSchedulingDedup(mode.dedup)
				if _, err := n.Announce(100, pfx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Warm-world snapshot benches (PR 7's tentpole) ---

// BenchmarkSnapshotFork measures the copy-on-write fork: one op turns a
// frozen medium world into a fresh mutable Internet — collectors, route
// servers, registry, and tap replay included. Build cost is paid once
// outside the timer; the per-op cost is what every warm sweep cell pays
// instead of a full rebuild.
func BenchmarkSnapshotFork(b *testing.B) {
	p := gen.Medium()
	p.Engine = "delta"
	p.Workers = runtime.GOMAXPROCS(0)
	snap, err := gen.BuildSnapshot(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := snap.Fork(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(w.Graph.NumASes()), "ases")
		}
	}
}

// BenchmarkSweepWarm runs the same 10-cell sweep cold and warm: five
// single-shot scenarios crossed with two community sets, all on one
// (scale, seed, engine) coordinate. Cold pays a full world build per
// cell; warm builds once and forks nine more times. The warm/cold
// ns-per-op ratio is the snapshot layer's headline speedup
// (BENCH_pr7.json). Heavy world-churning scenarios (blackhole-sweep)
// are deliberately absent: the bench isolates build amortization, the
// cost the snapshot layer actually removes.
func BenchmarkSweepWarm(b *testing.B) {
	names := []string{
		"rtbh", "steering-localpref", "steering-prepend",
		"route-manipulation", "propagation-distance",
	}
	for _, scale := range []string{"medium", "large"} {
		for _, mode := range []struct {
			name string
			cold bool
		}{{"cold", true}, {"warm", false}} {
			b.Run(scale+"/"+mode.name, func(b *testing.B) {
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := scenario.Grid{
						Scenarios:     names,
						Scales:        []string{scale},
						Seeds:         []int64{1},
						Engines:       []string{"delta"},
						CommunitySets: []string{"verified", "likely"},
						Cold:          mode.cold,
					}
					rep, err := scenario.Sweep(g, runtime.GOMAXPROCS(0))
					if err != nil {
						b.Fatal(err)
					}
					if rep.Errored > 0 {
						for _, c := range rep.Cells {
							if c.Err != "" {
								b.Fatalf("cell %s errored: %s", c.Scenario, c.Err)
							}
						}
					}
					if !mode.cold && rep.SnapshotForks < len(names) {
						b.Fatalf("warm sweep forked %d times, want >= %d", rep.SnapshotForks, len(names))
					}
					b.ReportMetric(float64(rep.Ran), "cells")
					b.ReportMetric(float64(rep.SnapshotBuilds), "builds")
					b.ReportMetric(float64(rep.SnapshotForks), "forks")
				}
			})
		}
	}
}

// --- Observability benches (PR 8's tentpole) ---

// BenchmarkWatchIngestWithMetrics replays the BenchmarkWatchIngest feed
// against an engine with a metrics registry attached. Comparing the two
// updates/sec numbers bounds the observability tax on the hot path; the
// ratchet holds it under 5%.
func BenchmarkWatchIngestWithMetrics(b *testing.B) {
	events := watchFeed(1024)
	e := watch.NewEngine(watch.Config{Metrics: obs.NewRegistry()})
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range events {
			e.Ingest(events[j])
		}
	}
	e.Flush()
	b.ReportMetric(float64(b.N*len(events))/b.Elapsed().Seconds(), "updates/sec")
	b.StopTimer()
	if st := e.Stats(); st.Dropped != 0 || st.Alerts == 0 {
		b.Fatalf("stats=%+v", st)
	}
}

// BenchmarkObsCounter measures the registry's per-increment cost — the
// price every instrumented event pays, so it has to stay in the
// nanoseconds.
func BenchmarkObsCounter(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total", "bench counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatalf("count=%d, want %d", c.Value(), b.N)
	}
}

// --- Serving-path benches (PR 9's tentpole) ---

// servingHandler builds the daemon's HTTP stack (internal/serve) over a
// pre-fed engine pair — the serving-path fixture.
func servingHandler(b *testing.B, events []watch.Event) (http.Handler, *watch.Engine) {
	b.Helper()
	reg := obs.NewRegistry()
	sem := semantics.NewEngine(semantics.Config{Workers: 2, Metrics: reg})
	holder := &semantics.Holder{}
	eng := watch.NewEngine(watch.Config{Semantics: sem, Metrics: reg})
	b.Cleanup(func() { eng.Close(); sem.Close() })
	for _, ev := range events {
		eng.Ingest(ev)
	}
	eng.Flush()
	holder.Store(sem.Snapshot())
	srv := serve.New(serve.Options{Watch: eng, Semantics: sem, Holder: holder, Registry: reg})
	return srv.Handler(), eng
}

func servingGet(b *testing.B, h http.Handler, path string) {
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Errorf("GET %s: status %d", path, rec.Code)
	}
}

// BenchmarkServingQuery measures the query fast path on a quiet engine:
// /alerts and /stats served from the version-keyed render cache. This
// is the gated serving-path number — it bounds the per-request overhead
// (mux, instrumentation, cache hit, response copy) with no contention
// from ingest.
func BenchmarkServingQuery(b *testing.B) {
	h, _ := servingHandler(b, watchFeed(4096))
	paths := []string{"/alerts", "/stats"}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			servingGet(b, h, paths[i%len(paths)])
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkServingUnderIngest measures concurrent query throughput
// while a sustained non-blocking feed hammers the engine — the serving
// QPS number under load, plus the feed's shed rate (the fraction the
// lossy live tap dropped while queries held read locks and renders).
func BenchmarkServingUnderIngest(b *testing.B) {
	events := watchFeed(4096)
	h, eng := servingHandler(b, events)
	stop := make(chan struct{})
	var offered uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			eng.TryIngest(events[i%len(events)])
			offered++
		}
	}()
	before := eng.Stats().Dropped
	paths := []string{"/alerts", "/stats", "/prefix/10.0.0.0/24"}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			servingGet(b, h, paths[i%len(paths)])
			i++
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
	if offered > 0 {
		shed := float64(eng.Stats().Dropped-before) / float64(offered) * 100
		b.ReportMetric(shed, "shed_%")
	}
}
